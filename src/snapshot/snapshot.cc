#include "snapshot/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "adaptive/column_access.h"
#include "io/file.h"
#include "io/inflate_file.h"
#include "util/fs_util.h"

namespace nodb {

std::string_view SnapshotStateName(SnapshotState state) {
  switch (state) {
    case SnapshotState::kNone:
      return "none";
    case SnapshotState::kLoaded:
      return "loaded";
    case SnapshotState::kStale:
      return "stale";
    case SnapshotState::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

namespace {

constexpr char kMagic[8] = {'N', 'O', 'D', 'B', 'S', 'N', 'A', 'P'};
/// v2 appends an optional per-column access-counter section after the
/// stats section. v3 appends an optional gzip checkpoint-index section
/// (decompression restart points for compressed sources, src/io). Older
/// files (missing sections) still load; the omitted state simply starts
/// cold. Anything else is rejected as stale.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;
constexpr size_t kHeaderBytes = 40;
constexpr uint64_t kSampleBytes = 64 * 1024;  // fingerprint head/tail window

// ------------------------------------------------------------------
// Byte-level encode/decode (fixed-width little-endian, as spill files)
// ------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader. Every accessor returns a zero value
/// and latches !ok() on underrun; callers check ok() once per section, and
/// must validate element counts against remaining() before bulk resizes so
/// a hostile length field cannot trigger a giant allocation. (The payload
/// checksum is verified before any decoding, so in practice a failure here
/// means a format-version mismatch — same safe answer: corrupt.)
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  bool ReadBytes(void* out, size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  uint8_t U8() {
    uint8_t v = 0;
    ReadBytes(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    ReadBytes(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    ReadBytes(&v, 8);
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  size_t pos() const { return pos_; }

  /// A view of already-validated bytes [from, to); used to hand column
  /// slices to the parallel decoders.
  std::string_view Slice(size_t from, size_t to) const {
    return data_.substr(from, to - from);
  }

  bool Skip(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  /// Like ReadBytes but returns a view into the payload instead of copying.
  std::string_view Bytes(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return std::string_view();
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool ReadU64Vec(std::vector<uint64_t>* out, size_t n) {
    if (!ok_ || remaining() < n * sizeof(uint64_t)) {
      ok_ = false;
      return false;
    }
    out->resize(n);
    return ReadBytes(out->data(), n * sizeof(uint64_t));
  }

  bool ReadU32Vec(std::vector<uint32_t>* out, size_t n) {
    if (!ok_ || remaining() < n * sizeof(uint32_t)) {
      ok_ = false;
      return false;
    }
    out->resize(n);
    return ReadBytes(out->data(), n * sizeof(uint32_t));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------------------------
// Typed value columns (cache chunks) and single values (stats min/max)
// ------------------------------------------------------------------

uint64_t FixedPayloadOf(const Value& v) {
  if (v.type() == TypeId::kDouble) {
    double d = v.f64();
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
  }
  return static_cast<uint64_t>(v.int64());
}

Value FixedValueOf(TypeId type, uint64_t payload) {
  switch (type) {
    case TypeId::kDouble: {
      double d;
      std::memcpy(&d, &payload, 8);
      return Value::Double(d);
    }
    case TypeId::kDate:
      return Value::Date(static_cast<int32_t>(payload));
    case TypeId::kBool:
      return Value::Bool(payload != 0);
    default:
      return Value::Int64(static_cast<int64_t>(payload));
  }
}

void PutColumn(std::string* out, TypeId type,
               const std::vector<Value>& values) {
  PutU8(out, static_cast<uint8_t>(type));
  const size_t n = values.size();
  PutU32(out, static_cast<uint32_t>(n));
  // Null bitmap: bit set = non-null.
  std::string bitmap((n + 7) / 8, '\0');
  for (size_t i = 0; i < n; ++i) {
    if (!values[i].is_null()) bitmap[i / 8] |= static_cast<char>(1 << (i % 8));
  }
  out->append(bitmap);
  if (type == TypeId::kString) {
    for (const Value& v : values) {
      if (!v.is_null()) PutStr(out, v.str());
    }
  } else {
    for (const Value& v : values) {
      PutU64(out, v.is_null() ? 0 : FixedPayloadOf(v));
    }
  }
}

/// Decodes a column previously written by PutColumn. `expected_type` is the
/// live schema's type for the attribute; a mismatch fails the decode.
bool ReadColumn(Reader* r, TypeId expected_type, uint32_t max_rows,
                std::vector<Value>* out) {
  TypeId type = static_cast<TypeId>(r->U8());
  uint32_t n = r->U32();
  if (!r->ok() || type != expected_type || n > max_rows) return false;
  std::string_view bitmap = r->Bytes((n + 7) / 8);
  if (!r->ok()) return false;
  out->clear();
  out->reserve(n);
  if (type == TypeId::kString) {
    for (uint32_t i = 0; i < n; ++i) {
      if (bitmap[i / 8] & (1 << (i % 8))) {
        out->push_back(Value::String(r->Str()));
      } else {
        out->push_back(Value::Null(type));
      }
    }
    return r->ok();
  }
  std::string_view words = r->Bytes(static_cast<size_t>(n) * 8);
  if (!r->ok()) return false;
  const char* p = words.data();
  uint32_t set = 0;
  for (char b : bitmap) set += std::popcount(static_cast<uint8_t>(b));
  if (set >= n) {
    // Fully populated column (the overwhelmingly common snapshot chunk):
    // per-type loops with no per-value null test or type dispatch.
    switch (type) {
      case TypeId::kDouble:
        for (uint32_t i = 0; i < n; ++i) {
          double d;
          std::memcpy(&d, p + 8 * static_cast<size_t>(i), 8);
          out->push_back(Value::Double(d));
        }
        break;
      case TypeId::kDate:
        for (uint32_t i = 0; i < n; ++i) {
          uint64_t w;
          std::memcpy(&w, p + 8 * static_cast<size_t>(i), 8);
          out->push_back(Value::Date(static_cast<int32_t>(w)));
        }
        break;
      case TypeId::kBool:
        for (uint32_t i = 0; i < n; ++i) {
          out->push_back(Value::Bool(p[8 * static_cast<size_t>(i)] != 0));
        }
        break;
      default:
        for (uint32_t i = 0; i < n; ++i) {
          int64_t v;
          std::memcpy(&v, p + 8 * static_cast<size_t>(i), 8);
          out->push_back(Value::Int64(v));
        }
    }
    return r->ok();
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t w;
    std::memcpy(&w, p + 8 * static_cast<size_t>(i), 8);
    out->push_back(bitmap[i / 8] & (1 << (i % 8)) ? FixedValueOf(type, w)
                                                  : Value::Null(type));
  }
  return r->ok();
}

/// Advances past one PutColumn-encoded column without materializing it —
/// O(1) for fixed-width types, a length-prefix walk for strings. Used to
/// slice the cache section so the expensive Value materialization can run
/// on all cores; the per-slice ReadColumn re-validates everything.
bool SkipColumn(Reader* r, uint32_t max_rows) {
  uint8_t type8 = r->U8();
  uint32_t n = r->U32();
  if (!r->ok() || type8 >= kNumTypeIds || n > max_rows) return false;
  const size_t bitmap_bytes = (n + 7) / 8;
  if (static_cast<TypeId>(type8) != TypeId::kString) {
    return r->Skip(bitmap_bytes + static_cast<size_t>(n) * 8);
  }
  std::string_view bitmap = r->Bytes(bitmap_bytes);
  for (uint32_t i = 0; i < n; ++i) {
    if (bitmap[i / 8] & (1 << (i % 8))) {
      uint32_t len = r->U32();
      if (!r->Skip(len)) return false;
    }
  }
  return r->ok();
}

void PutOptionalValue(std::string* out, TypeId type,
                      const std::optional<Value>& v) {
  if (!v.has_value() || v->is_null()) {
    PutU8(out, 0);
    return;
  }
  PutU8(out, 1);
  if (type == TypeId::kString) {
    PutStr(out, v->str());
  } else {
    PutU64(out, FixedPayloadOf(*v));
  }
}

bool ReadOptionalValue(Reader* r, TypeId type, std::optional<Value>* out) {
  uint8_t has = r->U8();
  if (!r->ok()) return false;
  if (has == 0) {
    out->reset();
    return true;
  }
  if (type == TypeId::kString) {
    *out = Value::String(r->Str());
  } else {
    *out = FixedValueOf(type, r->U64());
  }
  return r->ok();
}

void PutAttrStats(std::string* out, const AttrStats& s) {
  PutU8(out, static_cast<uint8_t>(s.type));
  PutU64(out, s.rows_seen);
  PutU64(out, s.nulls);
  double ndv = s.ndv;
  uint64_t ndv_bits;
  std::memcpy(&ndv_bits, &ndv, 8);
  PutU64(out, ndv_bits);
  PutOptionalValue(out, s.type, s.min);
  PutOptionalValue(out, s.type, s.max);
  PutU32(out, static_cast<uint32_t>(s.histogram.size()));
  for (uint32_t b : s.histogram) PutU32(out, b);
}

bool ReadAttrStats(Reader* r, TypeId expected_type, AttrStats* out) {
  out->type = static_cast<TypeId>(r->U8());
  if (!r->ok() || out->type != expected_type) return false;
  out->rows_seen = r->U64();
  out->nulls = r->U64();
  uint64_t ndv_bits = r->U64();
  std::memcpy(&out->ndv, &ndv_bits, 8);
  if (!ReadOptionalValue(r, out->type, &out->min)) return false;
  if (!ReadOptionalValue(r, out->type, &out->max)) return false;
  uint32_t hist_n = r->U32();
  if (!r->ok() || r->remaining() < hist_n * sizeof(uint32_t)) return false;
  out->histogram.resize(hist_n);
  for (uint32_t i = 0; i < hist_n; ++i) out->histogram[i] = r->U32();
  return r->ok();
}

// ------------------------------------------------------------------
// Decoded snapshot (validated in full before anything is installed)
// ------------------------------------------------------------------

struct DecodedCacheChunk {
  uint64_t stripe = 0;
  int attr = 0;
  std::vector<Value> values;
};

struct DecodedStats {
  int attr = 0;
  AttrStats stats;
};

struct DecodedSnapshot {
  SourceFingerprint fingerprint;
  std::string format;
  Schema schema;
  uint32_t tuples_per_chunk = 0;
  bool has_pmap = false;
  PositionalMap::ExportedState pmap;
  bool has_cache = false;
  std::vector<DecodedCacheChunk> cache;
  bool has_stats = false;
  bool has_row_count = false;
  uint64_t row_count = 0;
  std::vector<DecodedStats> stats;
  bool has_access = false;
  std::vector<ColumnAccessCounters> access;  // [attr] when has_access
  std::string gz_index;  // serialized InflateFile checkpoint index, or empty
};

/// Decodes and structurally validates the whole payload against its *own*
/// recorded schema (so a snapshot taken under a different schema decodes
/// cleanly and classifies as stale, not corrupt — the schema comparison is
/// the caller's). Returns false on any inconsistency — the caller treats
/// the file as corrupt and falls back to the cold path.
bool DecodePayload(std::string_view payload, uint32_t version,
                   DecodedSnapshot* out) {
  Reader r(payload);
  out->fingerprint.path = r.Str();
  out->fingerprint.size = r.U64();
  out->fingerprint.mtime_ns = r.I64();
  out->fingerprint.head_hash = r.U64();
  out->fingerprint.tail_hash = r.U64();
  out->format = r.Str();

  uint32_t ncols = r.U32();
  if (!r.ok() || ncols > 65535) return false;
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column c;
    c.name = r.Str();
    uint8_t type = r.U8();
    if (!r.ok() || type >= kNumTypeIds) return false;
    c.type = static_cast<TypeId>(type);
    cols.push_back(std::move(c));
  }
  out->schema = Schema(std::move(cols));
  out->tuples_per_chunk = r.U32();
  if (!r.ok() || out->tuples_per_chunk == 0) return false;
  const int snap_ncols = out->schema.num_columns();
  const uint64_t tpc = out->tuples_per_chunk;

  out->has_pmap = r.U8() != 0;
  if (out->has_pmap) {
    out->pmap.total_tuples = r.U64();
    uint64_t n_stripes = r.U64();
    // Each stripe carries at least a full spine; bound the count by what
    // the payload could possibly hold before reserving.
    if (!r.ok() || n_stripes > r.remaining() / (tpc * sizeof(uint64_t)) + 1) {
      return false;
    }
    out->pmap.stripes.reserve(n_stripes);
    for (uint64_t s = 0; s < n_stripes; ++s) {
      PositionalMap::ExportedStripe stripe;
      stripe.stripe = r.U64();
      uint32_t n_rows = r.U32();
      if (!r.ok() || n_rows != tpc) return false;
      if (!r.ReadU64Vec(&stripe.row_starts, n_rows)) return false;
      uint32_t n_attrs = r.U32();
      if (!r.ok() || n_attrs > static_cast<uint32_t>(snap_ncols)) return false;
      stripe.attrs.reserve(n_attrs);
      for (uint32_t a = 0; a < n_attrs; ++a) {
        int attr = static_cast<int>(static_cast<int32_t>(r.U32()));
        if (!r.ok() || attr < 0 || attr >= snap_ncols) return false;
        stripe.attrs.push_back(attr);
      }
      if (n_attrs > 0 &&
          !r.ReadU32Vec(&stripe.positions,
                        static_cast<size_t>(n_rows) * n_attrs)) {
        return false;
      }
      out->pmap.stripes.push_back(std::move(stripe));
    }
  }

  out->has_cache = r.U8() != 0;
  if (out->has_cache) {
    uint64_t n_chunks = r.U64();
    // A chunk costs at least its stripe/attr header plus a column header.
    if (!r.ok() || n_chunks > r.remaining() / 16 + 1) return false;
    out->cache.resize(n_chunks);
    // Two phases: a sequential walk validates chunk headers and slices each
    // column's bytes (O(1) per fixed-width column), then the slices — the
    // dominant cost of a big load is exactly this Value materialization —
    // decode in parallel, each through its own fully-validating Reader.
    std::vector<std::string_view> slices(n_chunks);
    for (uint64_t i = 0; i < n_chunks; ++i) {
      DecodedCacheChunk& chunk = out->cache[i];
      chunk.stripe = r.U64();
      chunk.attr = static_cast<int>(r.U32());
      if (!r.ok() || chunk.attr < 0 || chunk.attr >= snap_ncols) return false;
      size_t begin = r.pos();
      if (!SkipColumn(&r, out->tuples_per_chunk)) return false;
      slices[i] = r.Slice(begin, r.pos());
    }
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    auto decode_worker = [&] {
      for (size_t i; (i = next.fetch_add(1)) < slices.size();) {
        if (failed.load(std::memory_order_relaxed)) return;
        DecodedCacheChunk& chunk = out->cache[i];
        Reader cr(slices[i]);
        if (!ReadColumn(&cr, out->schema.column(chunk.attr).type,
                        out->tuples_per_chunk, &chunk.values) ||
            cr.remaining() != 0) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    size_t hw = std::thread::hardware_concurrency();
    size_t n_threads = std::min(hw == 0 ? 1 : hw, slices.size());
    std::vector<std::thread> workers;
    for (size_t t = 1; t < n_threads; ++t) workers.emplace_back(decode_worker);
    decode_worker();
    for (std::thread& w : workers) w.join();
    if (failed.load()) return false;
  }

  out->has_stats = r.U8() != 0;
  if (out->has_stats) {
    out->has_row_count = r.U8() != 0;
    out->row_count = r.U64();
    uint32_t n = r.U32();
    if (!r.ok() || n > static_cast<uint32_t>(snap_ncols)) return false;
    out->stats.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      DecodedStats ds;
      ds.attr = static_cast<int>(r.U32());
      if (!r.ok() || ds.attr < 0 || ds.attr >= snap_ncols) return false;
      if (!ReadAttrStats(&r, out->schema.column(ds.attr).type, &ds.stats)) {
        return false;
      }
      out->stats.push_back(std::move(ds));
    }
  }

  // v2: per-column access counters (workload accounting for the promotion
  // policy). The section covers every schema column or is absent entirely.
  if (version >= 2) {
    out->has_access = r.U8() != 0;
    if (out->has_access) {
      uint32_t n = r.U32();
      if (!r.ok() || n != static_cast<uint32_t>(snap_ncols) ||
          r.remaining() < static_cast<size_t>(n) * 5 * sizeof(uint64_t)) {
        return false;
      }
      out->access.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        ColumnAccessCounters& c = out->access[i];
        c.scans = r.U64();
        c.rows_parsed = r.U64();
        c.bytes_parsed = r.U64();
        c.rows_from_cache = r.U64();
        c.rows_from_promoted = r.U64();
      }
      if (!r.ok()) return false;
    }
  }

  // v3: gzip checkpoint index for compressed sources. An opaque blob —
  // InflateFile::InstallIndex validates it internally (own magic +
  // checksum), so decode only moves the bytes. Present only when the
  // writer's source was compressed and its index was complete.
  if (version >= 3) {
    if (r.U8() != 0) {
      out->gz_index = r.Str();
      if (!r.ok() || out->gz_index.empty()) return false;
    }
  }

  // Trailing garbage would mean the writer and reader disagree.
  return r.ok() && r.remaining() == 0;
}

/// The stripe size the live table addresses chunks with (0 when the table
/// has no stripe-addressed structure).
uint32_t LiveTuplesPerChunk(const TableRuntime& rt) {
  if (rt.pmap != nullptr) {
    return static_cast<uint32_t>(rt.pmap->tuples_per_chunk());
  }
  if (rt.cache != nullptr) {
    return static_cast<uint32_t>(rt.cache->tuples_per_chunk());
  }
  return 0;
}

SnapshotLoadInfo Reject(TableRuntime* rt, SnapshotLoadOutcome outcome,
                        uint64_t bytes, std::string detail) {
  SnapshotLoadInfo info;
  info.outcome = outcome;
  info.bytes = bytes;
  info.detail = std::move(detail);
  if (outcome == SnapshotLoadOutcome::kStale) {
    rt->snapshot_state.store(SnapshotState::kStale, std::memory_order_release);
  } else if (outcome == SnapshotLoadOutcome::kCorrupt) {
    rt->snapshot_state.store(SnapshotState::kCorrupt,
                             std::memory_order_release);
  }
  return info;
}

}  // namespace

uint64_t SnapshotChecksum(const char* data, size_t n) {
  // Four independent FNV-style lanes, folded at the end: one lane's
  // multiply chain is latency-bound (~5 cycles per word), four lanes keep
  // the multiplier pipeline full. Every input bit still perturbs the digest
  // through a bijective step, and the final length fold catches truncation
  // that happens to end on a run of zero words.
  constexpr uint64_t kPrime = 0x100000001B3ULL;
  uint64_t h0 = 0xCBF29CE484222325ULL;
  uint64_t h1 = 0x9E3779B97F4A7C15ULL;
  uint64_t h2 = 0xC2B2AE3D27D4EB4FULL;
  uint64_t h3 = 0x165667B19E3779F9ULL;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint64_t w[4];
    std::memcpy(w, data + i, 32);
    h0 = (h0 ^ w[0]) * kPrime;
    h1 = (h1 ^ w[1]) * kPrime;
    h2 = (h2 ^ w[2]) * kPrime;
    h3 = (h3 ^ w[3]) * kPrime;
    h0 ^= h0 >> 29;
    h1 ^= h1 >> 29;
    h2 ^= h2 >> 29;
    h3 ^= h3 >> 29;
  }
  uint64_t h = h0;
  h = (h ^ h1) * kPrime;
  h ^= h >> 29;
  h = (h ^ h2) * kPrime;
  h ^= h >> 29;
  h = (h ^ h3) * kPrime;
  h ^= h >> 29;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * kPrime;
    h ^= h >> 29;
  }
  uint64_t tail = 0;
  if (i < n) std::memcpy(&tail, data + i, n - i);
  h = (h ^ tail ^ static_cast<uint64_t>(n)) * kPrime;
  h ^= h >> 32;
  return h;
}

std::string SnapshotPathFor(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".nodbsnap";
}

Result<SourceFingerprint> FingerprintSource(const std::string& path) {
  SourceFingerprint fp;
  fp.path = path;
  NODB_ASSIGN_OR_RETURN(fp.size, FileSizeOf(path));
  NODB_ASSIGN_OR_RETURN(fp.mtime_ns, FileMTimeNs(path));
  // A private handle: fingerprinting must not count against the table's
  // raw-scan I/O accounting (tests assert zero bytes_read on warm paths).
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        RandomAccessFile::Open(path));
  std::vector<char> buf(kSampleBytes);
  uint64_t head_len = std::min<uint64_t>(kSampleBytes, fp.size);
  NODB_ASSIGN_OR_RETURN(uint64_t n, file->Read(0, head_len, buf.data()));
  fp.head_hash = SnapshotChecksum(buf.data(), n);
  uint64_t tail_off = fp.size > kSampleBytes ? fp.size - kSampleBytes : 0;
  uint64_t tail_len = fp.size - tail_off;
  NODB_ASSIGN_OR_RETURN(n, file->Read(tail_off, tail_len, buf.data()));
  fp.tail_hash = SnapshotChecksum(buf.data(), n);
  return fp;
}

uint64_t WarmStateSignature(const TableRuntime& rt) {
  uint64_t sig = 0xA0C0FFEEULL;
  if (rt.pmap != nullptr) {
    PositionalMap::Counters c = rt.pmap->counters();
    sig = HashCombine(sig, rt.pmap->num_positions());
    sig = HashCombine(sig, rt.pmap->memory_bytes());
    sig = HashCombine(sig, rt.pmap->total_tuples());
    sig = HashCombine(sig, c.fragments_installed);
    sig = HashCombine(sig, c.chunks_evicted);
  }
  if (rt.cache != nullptr) {
    ColumnCache::Counters c = rt.cache->counters();
    sig = HashCombine(sig, c.inserts);
    sig = HashCombine(sig, c.evictions);
    sig = HashCombine(sig, rt.cache->memory_bytes());
  }
  if (rt.stats != nullptr) {
    std::optional<uint64_t> rc = rt.stats->row_count();
    sig = HashCombine(sig, rc.has_value() ? *rc + 1 : 0);
  }
  if (rt.access != nullptr) {
    sig = HashCombine(sig, rt.access->Signature());
  }
  if (rt.adapter != nullptr) {
    // Compressed sources: a completed checkpoint index is warm state worth
    // re-saving even when nothing else moved (the next restart then seeks
    // instead of re-inflating from zero).
    if (const InflateFile* gz = rt.adapter->file()->AsInflateFile()) {
      sig = HashCombine(sig, gz->checkpoint_count());
      sig = HashCombine(sig, gz->index_complete() ? 1 : 0);
    }
  }
  return sig;
}

Result<SnapshotWriteInfo> WriteTableSnapshot(TableRuntime* rt) {
  if (rt->storage != TableStorage::kRaw || rt->adapter == nullptr) {
    return Status::InvalidArgument("snapshots apply to raw tables only");
  }
  if (rt->snapshot_dir.empty()) {
    return Status::InvalidArgument("table '" + rt->name +
                                   "' has no snapshot directory configured");
  }
  if (rt->pmap == nullptr && rt->cache == nullptr && rt->stats == nullptr) {
    return Status::InvalidArgument(
        "table '" + rt->name + "' has no adaptive structures to snapshot");
  }
  NODB_RETURN_IF_ERROR(CreateDir(rt->snapshot_dir));

  // The signature is taken *before* the export: state that mutates during
  // the export makes the saved signature conservative (the next background
  // pass sees a difference and re-saves), never the reverse.
  const uint64_t signature = WarmStateSignature(*rt);

  NODB_ASSIGN_OR_RETURN(SourceFingerprint fp,
                        FingerprintSource(rt->adapter->path()));

  std::string payload;
  payload.reserve(1 << 20);
  PutStr(&payload, fp.path);
  PutU64(&payload, fp.size);
  PutI64(&payload, fp.mtime_ns);
  PutU64(&payload, fp.head_hash);
  PutU64(&payload, fp.tail_hash);
  PutStr(&payload, rt->adapter->format_name());
  PutU32(&payload, static_cast<uint32_t>(rt->schema.num_columns()));
  for (const Column& c : rt->schema.columns()) {
    PutStr(&payload, c.name);
    PutU8(&payload, static_cast<uint8_t>(c.type));
  }
  PutU32(&payload, LiveTuplesPerChunk(*rt));

  if (rt->pmap != nullptr) {
    PutU8(&payload, 1);
    PositionalMap::ExportedState state = rt->pmap->ExportState();
    PutU64(&payload, state.total_tuples);
    PutU64(&payload, state.stripes.size());
    for (const PositionalMap::ExportedStripe& s : state.stripes) {
      PutU64(&payload, s.stripe);
      PutU32(&payload, static_cast<uint32_t>(s.row_starts.size()));
      payload.append(reinterpret_cast<const char*>(s.row_starts.data()),
                     s.row_starts.size() * sizeof(uint64_t));
      PutU32(&payload, static_cast<uint32_t>(s.attrs.size()));
      for (int a : s.attrs) PutU32(&payload, static_cast<uint32_t>(a));
      if (!s.positions.empty()) {
        payload.append(reinterpret_cast<const char*>(s.positions.data()),
                       s.positions.size() * sizeof(uint32_t));
      }
    }
  } else {
    PutU8(&payload, 0);
  }

  if (rt->cache != nullptr) {
    PutU8(&payload, 1);
    std::vector<ColumnCache::ExportedChunk> chunks = rt->cache->ExportState();
    PutU64(&payload, chunks.size());
    for (const ColumnCache::ExportedChunk& chunk : chunks) {
      PutU64(&payload, chunk.stripe);
      PutU32(&payload, static_cast<uint32_t>(chunk.attr));
      PutColumn(&payload, rt->schema.column(chunk.attr).type, *chunk.values);
    }
  } else {
    PutU8(&payload, 0);
  }

  if (rt->stats != nullptr) {
    PutU8(&payload, 1);
    std::optional<uint64_t> rc = rt->stats->row_count();
    PutU8(&payload, rc.has_value() ? 1 : 0);
    PutU64(&payload, rc.value_or(0));
    std::vector<std::pair<int, TableStats::AttrStatsPtr>> built =
        rt->stats->ExportBuilt();
    PutU32(&payload, static_cast<uint32_t>(built.size()));
    for (const auto& [attr, stats] : built) {
      PutU32(&payload, static_cast<uint32_t>(attr));
      PutAttrStats(&payload, *stats);
    }
  } else {
    PutU8(&payload, 0);
  }

  if (rt->access != nullptr) {
    PutU8(&payload, 1);
    const int ncols = rt->schema.num_columns();
    PutU32(&payload, static_cast<uint32_t>(ncols));
    for (int a = 0; a < ncols; ++a) {
      ColumnAccessCounters c = rt->access->Snapshot(a);
      PutU64(&payload, c.scans);
      PutU64(&payload, c.rows_parsed);
      PutU64(&payload, c.bytes_parsed);
      PutU64(&payload, c.rows_from_cache);
      PutU64(&payload, c.rows_from_promoted);
    }
  } else {
    PutU8(&payload, 0);
  }

  // v3: gzip checkpoint index. Only a *complete* index is worth persisting
  // (SerializeIndex returns empty otherwise); a partial one would be
  // rebuilt by the next cold scan anyway.
  {
    std::string gz_index;
    if (const InflateFile* gz = rt->adapter->file()->AsInflateFile()) {
      gz_index = gz->SerializeIndex();
    }
    if (!gz_index.empty()) {
      PutU8(&payload, 1);
      PutStr(&payload, gz_index);
    } else {
      PutU8(&payload, 0);
    }
  }

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU32(&header, 0);  // flags
  PutU64(&header, payload.size());
  PutU64(&header, SnapshotChecksum(payload.data(), payload.size()));
  PutU64(&header, 0);  // reserved

  // Write-temp + fsync + atomic rename: a crash at any point leaves either
  // the previous complete snapshot or the new one, never a torn file.
  SnapshotWriteInfo info;
  info.path = SnapshotPathFor(rt->snapshot_dir, rt->name);
  info.bytes = header.size() + payload.size();
  std::string tmp = info.path + ".tmp." + std::to_string(getpid());
  {
    NODB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                          WritableFile::Create(tmp));
    Status write_status = f->Append(header);
    if (write_status.ok()) write_status = f->Append(payload);
    if (write_status.ok()) write_status = f->Sync();
    if (write_status.ok()) write_status = f->Close();
    if (write_status.ok()) write_status = RenameFile(tmp, info.path);
    if (!write_status.ok()) {
      RemoveFileIfExists(tmp);
      return write_status;
    }
  }

  rt->snapshot_bytes.store(info.bytes, std::memory_order_release);
  rt->snapshot_signature.store(signature, std::memory_order_release);
  return info;
}

SnapshotLoadInfo LoadTableSnapshot(TableRuntime* rt) {
  SnapshotLoadInfo info;
  if (rt->storage != TableStorage::kRaw || rt->adapter == nullptr ||
      rt->snapshot_dir.empty() ||
      (rt->pmap == nullptr && rt->cache == nullptr && rt->stats == nullptr)) {
    info.detail = "table not snapshot-capable";
    return info;
  }
  const std::string path = SnapshotPathFor(rt->snapshot_dir, rt->name);
  if (!FileExists(path)) {
    info.detail = "no snapshot file";
    return info;
  }
  Result<std::string> raw = ReadFileToString(path);
  if (!raw.ok()) {
    return Reject(rt, SnapshotLoadOutcome::kCorrupt, 0,
                  "unreadable: " + raw.status().message());
  }
  const std::string& bytes = *raw;
  info.bytes = bytes.size();

  // Header: magic, version, size, checksum — all verified before a single
  // payload field is interpreted.
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Reject(rt, SnapshotLoadOutcome::kCorrupt, info.bytes, "bad magic");
  }
  Reader header(std::string_view(bytes).substr(sizeof(kMagic),
                                               kHeaderBytes - sizeof(kMagic)));
  uint32_t version = header.U32();
  header.U32();  // flags
  uint64_t payload_size = header.U64();
  uint64_t checksum = header.U64();
  if (version < kMinVersion || version > kVersion) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "snapshot version " + std::to_string(version));
  }
  if (bytes.size() != kHeaderBytes + payload_size) {
    return Reject(rt, SnapshotLoadOutcome::kCorrupt, info.bytes,
                  "truncated payload");
  }
  std::string_view payload =
      std::string_view(bytes).substr(kHeaderBytes, payload_size);
  if (SnapshotChecksum(payload.data(), payload.size()) != checksum) {
    return Reject(rt, SnapshotLoadOutcome::kCorrupt, info.bytes,
                  "checksum mismatch");
  }

  // Decode + validate everything before installing anything, so a rejected
  // snapshot leaves the table untouched (cold).
  DecodedSnapshot snap;
  if (!DecodePayload(payload, version, &snap)) {
    return Reject(rt, SnapshotLoadOutcome::kCorrupt, info.bytes,
                  "undecodable payload");
  }

  // Staleness: the raw source must still be byte-identical (as far as the
  // fingerprint can tell) to what the snapshot indexed, and the engine must
  // address stripes the same way.
  Result<SourceFingerprint> now = FingerprintSource(rt->adapter->path());
  if (!now.ok()) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "source unreadable: " + now.status().message());
  }
  if (!(*now == snap.fingerprint)) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "source fingerprint changed");
  }
  if (snap.format != rt->adapter->format_name()) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "format changed");
  }
  if (!(snap.schema == rt->schema)) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "schema changed");
  }
  uint32_t live_tpc = LiveTuplesPerChunk(*rt);
  if (live_tpc != 0 && snap.tuples_per_chunk != live_tpc) {
    return Reject(rt, SnapshotLoadOutcome::kStale, info.bytes,
                  "stripe size changed");
  }

  // ---- install ----

  if (snap.has_pmap && rt->pmap != nullptr) {
    // Through the scan install path, under a fresh epoch: budget admission
    // applies (an over-budget snapshot is partially declined — positions
    // only cost future re-tokenization) and the installed chunks are
    // protected from self-eviction while the install runs.
    const uint64_t tpc = snap.tuples_per_chunk;
    uint64_t epoch = rt->pmap->BeginEpoch();
    // Stripes install concurrently, exactly like parallel morsel workers
    // landing their fragments: InstallFragment is the concurrent-scan merge
    // path, and distinct stripes touch distinct chunks.
    std::atomic<size_t> next_stripe{0};
    auto install_worker = [&] {
      PmapFragment frag;
      for (size_t si; (si = next_stripe.fetch_add(1)) <
                      snap.pmap.stripes.size();) {
        const PositionalMap::ExportedStripe& s = snap.pmap.stripes[si];
        const size_t n_attrs = s.attrs.size();
        // One fragment per contiguous run of known row starts (a
        // fragment's records are consecutive tuples by contract).
        size_t r = 0;
        while (r < s.row_starts.size()) {
          if (s.row_starts[r] == PositionalMap::kNoRowStart) {
            ++r;
            continue;
          }
          size_t run_end = r;
          while (run_end < s.row_starts.size() &&
                 s.row_starts[run_end] != PositionalMap::kNoRowStart) {
            ++run_end;
          }
          frag.Reset(s.attrs);
          frag.Reserve(static_cast<int>(run_end - r));
          for (size_t i = r; i < run_end; ++i) {
            frag.AddRecord(s.row_starts[i],
                           n_attrs > 0 ? &s.positions[i * n_attrs] : nullptr);
          }
          rt->pmap->InstallFragment(frag, s.stripe * tpc + r, epoch);
          r = run_end;
        }
      }
    };
    size_t hw = std::thread::hardware_concurrency();
    size_t n_threads = std::min(hw == 0 ? 1 : hw, snap.pmap.stripes.size());
    std::vector<std::thread> workers;
    for (size_t t = 1; t < n_threads; ++t) workers.emplace_back(install_worker);
    install_worker();
    for (std::thread& w : workers) w.join();
    rt->pmap->EndEpoch(epoch);
    if (snap.pmap.total_tuples > 0) {
      rt->pmap->SetTotalTuples(snap.pmap.total_tuples);
      rt->known_row_count.store(
          static_cast<double>(snap.pmap.total_tuples),
          std::memory_order_release);
    }
  }

  if (snap.has_cache && rt->cache != nullptr) {
    for (DecodedCacheChunk& chunk : snap.cache) {
      rt->cache->Put(chunk.stripe, chunk.attr, std::move(chunk.values));
    }
  }

  if (snap.has_access && rt->access != nullptr) {
    for (int a = 0; a < rt->schema.num_columns(); ++a) {
      rt->access->InstallSnapshot(a, snap.access[a]);
    }
  }

  if (!snap.gz_index.empty()) {
    // Best-effort: a rejected index (corrupt blob, or the source is no
    // longer served compressed) only costs re-inflation from zero — the
    // rest of the warm state above stays installed either way.
    if (const InflateFile* gz = rt->adapter->file()->AsInflateFile()) {
      (void)gz->InstallIndex(snap.gz_index);
    }
  }

  if (snap.has_stats && rt->stats != nullptr) {
    for (DecodedStats& ds : snap.stats) {
      rt->stats->InstallSnapshot(ds.attr, std::move(ds.stats));
    }
    if (snap.has_row_count) {
      rt->stats->SetRowCount(snap.row_count);
      rt->known_row_count.store(static_cast<double>(snap.row_count),
                                std::memory_order_release);
    }
    if (snap.has_row_count || !snap.stats.empty()) {
      rt->stats_populated.store(true, std::memory_order_release);
    }
  }

  rt->snapshot_state.store(SnapshotState::kLoaded, std::memory_order_release);
  rt->snapshot_bytes.store(info.bytes, std::memory_order_release);
  // The freshly restored state is what's on disk; don't re-save it until
  // the live workload moves it.
  rt->snapshot_signature.store(WarmStateSignature(*rt),
                               std::memory_order_release);
  info.outcome = SnapshotLoadOutcome::kLoaded;
  return info;
}

}  // namespace nodb
