#include "types/data_type.h"

namespace nodb {

std::string_view TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
    case TypeId::kDate:
      return "date";
    case TypeId::kBool:
      return "bool";
  }
  return "unknown";
}

int FixedWidthOf(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kDate:
      return 4;
    case TypeId::kBool:
      return 1;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

int ConversionCostClass(TypeId type) {
  switch (type) {
    case TypeId::kDouble:
      return 3;  // float parsing is the most expensive conversion
    case TypeId::kInt64:
    case TypeId::kDate:
      return 2;
    case TypeId::kBool:
      return 1;
    case TypeId::kString:
      return 0;  // raw bytes are already the value
  }
  return 0;
}

}  // namespace nodb
