#ifndef NODB_ENGINE_DATABASE_H_
#define NODB_ENGINE_DATABASE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adaptive/promoter.h"
#include "engine/config.h"
#include "engine/query_cursor.h"
#include "exec/executor.h"
#include "exec/query_result.h"
#include "exec/table_runtime.h"
#include "plan/planner.h"
#include "raw/adapter_registry.h"
#include "sql/binder.h"
#include "storage/loader.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace nodb {

/// Per-query execution options, honored identically by Query and Execute
/// (the materializing wrapper used to build its own ExecOptions and drop
/// the caller's — deadlines now apply to both paths uniformly).
struct QueryOptions {
  /// Monotonic-clock deadline; zero (default) = none. Checked at batch
  /// boundaries: an expired deadline kills the query mid-flight with a
  /// typed kDeadlineExceeded error, releasing scan epochs and pool slots.
  std::chrono::steady_clock::time_point deadline{};
  /// Shared cancel/deadline handle. Optional — when null and `deadline` is
  /// set, one is created internally. A caller that cancels mid-flight (a
  /// server session reacting to a CANCEL verb or a dropped connection)
  /// passes its own handle and flips control->cancelled from any thread.
  ExecControlPtr control;
  /// Rows per operator batch; 0 (default) = EngineConfig::batch_size.
  size_t batch_size = 0;
};

/// Catalog snapshot of one registered table (Database::ListTables).
struct TableInfo {
  std::string name;
  /// Raw tables report their adapter's format ("csv", "fits", "jsonl", ...);
  /// loaded tables report their storage engine ("heap", "compact").
  std::string format;
  TableStorage storage = TableStorage::kRaw;
  /// Exact row count when known (loaded tables, or raw tables after a full
  /// scan); negative while still unknown.
  double row_count = -1;
  /// Current footprint of the adaptive structures (0 when absent).
  uint64_t pmap_bytes = 0;
  uint64_t cache_bytes = 0;
  /// Warm-restart snapshot state (raw tables; kNone when the feature is off
  /// or no snapshot file existed at Open).
  SnapshotState snapshot_state = SnapshotState::kNone;
  /// On-disk size of the snapshot last loaded or written for this table.
  uint64_t snapshot_bytes = 0;
  /// Raw-file bytes read through the table's adapter since Open (0 for
  /// loaded tables). The observable for "a warm restart re-parses nothing".
  /// For compressed sources this counts *decompressed payload* bytes.
  uint64_t bytes_read = 0;
  /// Compressed-source (gzip) state; all zero/false for plain files.
  /// `gz_bytes_inflated` counts every decompressed byte produced, including
  /// skip-forward bytes during checkpoint seeks — the observable for "a
  /// restarted server inflates only from checkpoints" (stays 0 when the
  /// cache serves everything, bounded by one interval per pmap seek).
  bool compressed = false;
  uint64_t gz_checkpoints = 0;
  uint64_t gz_bytes_inflated = 0;
  uint64_t gz_compressed_bytes_read = 0;
  /// Workload-driven promotion state (src/adaptive; empty/zero when the
  /// subsystem is off). Attributes currently resident in the promoted
  /// columnar store, their footprint, and lifetime transition counts.
  std::vector<int> promoted_columns;
  uint64_t promoted_bytes = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
};

/// Aggregate outcome counters of the snapshot subsystem for one Database
/// (Database::snapshot_counters; surfaced by the server's STATS verb).
struct SnapshotCounters {
  uint64_t loads = 0;          // snapshots restored at Open
  uint64_t load_misses = 0;    // no snapshot file present at Open
  uint64_t load_stale = 0;     // rejected: source fingerprint moved
  uint64_t load_corrupt = 0;   // rejected: checksum/decode failure
  uint64_t saves = 0;          // snapshot files written
  uint64_t save_failures = 0;  // write attempts that errored (I/O)
  uint64_t bytes_loaded = 0;
  uint64_t bytes_saved = 0;
};

/// The engine facade: a catalog of tables plus SQL execution. One Database
/// instance corresponds to one "system" in the paper's experiments; its
/// EngineConfig decides whether tables are queried in situ (raw files made
/// first-class citizens, with adaptive positional map / cache / statistics
/// persisting across queries) or loaded up front.
///
/// Typical NoDB use:
///
///   Database db(EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC));
///   db.RegisterCsv("t", "/data/t.csv", schema);
///   auto result = db.Execute("SELECT a, SUM(b) FROM t GROUP BY a");
///
/// Typical loaded-DBMS use:
///
///   Database db(EngineConfig::ForSystem(SystemUnderTest::kPostgreSQL));
///   auto load = db.LoadCsv("t", "/data/t.csv", schema);   // pays the load
///   auto result = db.Execute("SELECT ...");
class Database : public TableProvider,
                 public StatsProvider,
                 public TableResolver {
 public:
  explicit Database(EngineConfig config);
  ~Database() override;

  // ------------------------------------------------------------------
  // Catalog
  // ------------------------------------------------------------------

  /// Registers a raw file for in-situ querying through the pluggable
  /// adapter API (no data movement). With default options the format is
  /// auto-detected from the file's name and first bytes via the
  /// AdapterRegistry sniffers, and the adapter discovers the schema itself
  /// where the format allows (FITS header, JSONL first record); declare a
  /// schema through `options` where it doesn't (CSV, as in the paper).
  Status Open(const std::string& name, const std::string& path,
              OpenOptions options = {});

  /// Compatibility wrapper over Open: registers a raw CSV file with a
  /// declared schema.
  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvDialect dialect = CsvDialect{});

  /// Compatibility wrapper over Open: registers a raw FITS binary table;
  /// the schema comes from the header.
  Status RegisterFits(const std::string& name, const std::string& path);

  /// Bulk-loads a CSV into this engine's loaded storage format, paying the
  /// up-front cost the paper's baselines pay. Statistics are gathered
  /// during the load (ANALYZE-equivalent).
  Result<LoadResult> LoadCsv(const std::string& name, const std::string& path,
                             Schema schema, CsvDialect dialect = CsvDialect{});

  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  /// Snapshot of every registered table (name order): format, storage, row
  /// count if known, adaptive-structure footprints, and warm-restart
  /// snapshot state.
  std::vector<TableInfo> ListTables() const;

  // ------------------------------------------------------------------
  // Warm-restart snapshots (src/snapshot)
  // ------------------------------------------------------------------

  /// Persists the named raw table's warm state (positional map, cache,
  /// statistics) to its snapshot directory now, regardless of whether the
  /// state moved since the last save. Returns the bytes written. Errors:
  /// NotFound for unknown tables, InvalidArgument for loaded tables or
  /// tables without a snapshot directory, IOError on write failure. Never
  /// blocks running queries beyond the structures' own short export locks.
  Result<uint64_t> Snapshot(const std::string& name);

  /// Persists every eligible raw table whose warm state moved since its
  /// last save (the graceful-shutdown path; the server's Stop calls this
  /// after draining). Per-table failures are counted and the first error
  /// is returned after all tables were attempted.
  Status SnapshotAll();

  /// Aggregate snapshot outcome counters since construction.
  SnapshotCounters snapshot_counters() const;

  // ------------------------------------------------------------------
  // Workload-driven column promotion (src/adaptive)
  // ------------------------------------------------------------------

  /// Runs one promotion cycle over the named raw table now: scores columns
  /// by observed access cost, bulk-loads the hot ones into the promoted
  /// columnar store, demotes cold ones under the byte budget. Requires
  /// config.promotion.enabled; safe to call while queries run (installation
  /// goes through the epoch-protected fragment path). Errors: NotFound for
  /// unknown tables, InvalidArgument for loaded tables or when promotion is
  /// disabled.
  Result<TablePromotionReport> RunPromotionCycle(const std::string& name);

  /// Runs one promotion cycle over every raw table (what the background
  /// promoter does each tick); reports in table-name order.
  std::vector<TablePromotionReport> RunPromotionCycles();

  // ------------------------------------------------------------------
  // Queries
  // ------------------------------------------------------------------

  /// Parses, binds and plans one SELECT statement, returning a streaming
  /// cursor the caller drains batch-by-batch (see QueryCursor). This is the
  /// primary execution API: nothing is materialized by the engine, and
  /// closing the cursor early (LIMIT satisfied, query abandoned) stops the
  /// underlying raw-file scan immediately. The cursor must not outlive this
  /// Database.
  Result<QueryCursor> Query(const std::string& sql) {
    return Query(sql, QueryOptions{});
  }

  /// Query with per-query options (deadline, cancellation handle, batch
  /// size). Engine-level knobs (in-situ options, scan threads, the shared
  /// pool) still come from this Database's EngineConfig.
  Result<QueryCursor> Query(const std::string& sql,
                            const QueryOptions& options);

  /// Convenience wrapper over Query: drains the cursor into a materialized
  /// QueryResult. The result's `seconds` covers the whole round trip (what
  /// a user experiences).
  Result<QueryResult> Execute(const std::string& sql) {
    return Execute(sql, QueryOptions{});
  }

  /// Execute with per-query options — the same options Query honors; a
  /// deadline expiring mid-drain discards the partial result.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryOptions& options);

  /// Plans without executing (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  // ------------------------------------------------------------------
  // Introspection / experiment control
  // ------------------------------------------------------------------

  const EngineConfig& config() const { return config_; }

  /// Runtime state of a registered table (positional map, cache, stats).
  TableRuntime* runtime(const std::string& name);

  /// Drops buffer-pool contents of loaded tables (per-query cold-cache
  /// experiments; the OS page cache is out of scope, as in DESIGN.md).
  void DropBufferCaches();

  // --- TableProvider ---
  Result<const Schema*> GetTableSchema(const std::string& name) const override;
  // --- StatsProvider ---
  const TableStats* GetTableStats(const std::string& name) const override;
  double GetRowCount(const std::string& name) const override;
  bool IsColumnPromoted(const std::string& name, int attr) const override;
  // --- TableResolver ---
  Result<TableRuntime*> GetTableRuntime(const std::string& name) override;

 private:
  Status RegisterCommon(const std::string& name,
                        std::unique_ptr<TableRuntime> runtime);
  InSituOptions MakeInSituOptions() const;
  /// Writes one table's snapshot and updates the counters; serialized per
  /// Database through snapshot_mu_ (lock order: catalog_mu_ → snapshot_mu_).
  Result<uint64_t> SnapshotTable(TableRuntime* rt);
  /// Starts the background writer once (no-op unless
  /// config_.snapshot_interval_ms > 0); idempotent.
  void StartSnapshotWriter();
  void StopSnapshotWriter();
  void SnapshotWriterLoop();
  /// Starts the background promoter once (no-op unless
  /// config_.promotion.enabled and interval_ms > 0); idempotent.
  void StartPromoter();
  void StopPromoter();
  void PromoterLoop();
  /// The shared scan worker pool, created lazily when a query may run a
  /// parallel raw scan (grown, never shrunk, to the largest thread count
  /// any table asks for); nullptr while everything is serial.
  ThreadPool* ScanPool();

  EngineConfig config_;
  std::unordered_map<std::string, std::unique_ptr<TableRuntime>> tables_;
  /// Guards catalog *mutation* against the background snapshot writer's
  /// iteration (RegisterCommon / DropTable / SnapshotAll / writer loop).
  /// The query path still reads tables_ unlocked, under the pre-existing
  /// register-before-querying contract.
  mutable std::mutex catalog_mu_;
  /// Serializes snapshot writes and guards snapshot_counters_.
  mutable std::mutex snapshot_mu_;
  SnapshotCounters snapshot_counters_;
  std::thread snapshot_thread_;
  std::mutex snapshot_thread_mu_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;
  std::thread promoter_thread_;
  std::mutex promoter_mu_;
  std::condition_variable promoter_cv_;
  /// Atomic (not a plain cv flag) because it doubles as the cooperative
  /// stop token polled inside a long promotion load.
  std::atomic<bool> promoter_stop_{false};
  std::mutex pool_mu_;
  /// Declared last: destroyed first, so no worker outlives the catalog.
  /// (Cursors must not outlive the Database regardless.)
  std::unique_ptr<ThreadPool> scan_pool_;
};

}  // namespace nodb

#endif  // NODB_ENGINE_DATABASE_H_
