#ifndef NODB_RAW_PARSE_KERNELS_IMPL_H_
#define NODB_RAW_PARSE_KERNELS_IMPL_H_

#include <algorithm>
#include <bit>
#include <cstring>

#include "csv/tokenizer.h"
#include "raw/parse_kernels.h"

/// Template drivers shared by the SWAR / SSE2 / AVX2 translation units.
///
/// Each TU supplies a *Scanner*: a fixed-width block load plus byte-equality
/// tests producing a dense little-endian bitmask (bit k set iff byte k
/// matches). The drivers below turn those primitives into the record-level
/// kernels of the ParseKernels table. Two invariants every driver keeps:
///
///  1. No overread: full-width loads only while `i + kWidth <= n`; the tail
///     goes through TailMask — an overlapping full load ending at the
///     line's last byte (every byte read is in-bounds line content) when
///     the line spans at least one lane, else LoadPartial's copy of the
///     exact remainder into a zeroed stack block. ASan-clean by
///     construction, proven by the conformance tests running over
///     exactly-sized heap buffers.
///  2. Scalar mirroring: control flow is a transliteration of the scalar
///     reference in csv/tokenizer.cc and json/json_text.cc — only the
///     byte-at-a-time searches become block scans — so malformed input
///     takes the same path to the same answer.

namespace nodb {

// Implemented in parse_kernels.cc; shared by every non-scalar table.
Result<int64_t> KernelParseInt64(std::string_view text);
Result<double> KernelParseDouble(std::string_view text);
Result<int32_t> KernelParseDate(std::string_view text);
void ResolveJsonEscapes(JsonBitmaps* bm);

namespace kern {

inline uint64_t LowMask(size_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/// Portable 64-bit SWAR scanner: eight bytes per block, equality via
/// broadcast-XOR plus an exact per-byte zero test, mask densified with a
/// multiply (every product bit position 8i+7+7j is distinct, so no
/// carries). The familiar `(x - kOnes) & ~x & kHigh` haszero trick is NOT
/// usable here: its subtraction borrows across bytes, falsely tagging
/// bytes above a real match (",-" would tag both bytes as ','), and the
/// tokenizer consumes *every* bit of the mask, not just the lowest.
struct SwarScanner {
  static constexpr size_t kWidth = 8;
  using Block = uint64_t;

  static Block Load(const char* p) {
    Block b;
    std::memcpy(&b, p, sizeof(b));
    return b;
  }
  static Block LoadPartial(const char* p, size_t n) {
    Block b = 0;
    std::memcpy(&b, p, n);
    return b;
  }
  static uint64_t Eq(Block b, char c) {
    constexpr uint64_t kOnes = 0x0101010101010101ull;
    constexpr uint64_t kHigh = 0x8080808080808080ull;
    constexpr uint64_t kLow7 = 0x7F7F7F7F7F7F7F7Full;
    uint64_t x = b ^ (kOnes * static_cast<uint8_t>(c));
    // Byte-exact zero test: (x&0x7F)+0x7F overflows into the high bit for
    // any nonzero low-7 value, |x covers the high bit itself; per-byte sums
    // stay <= 0xFE so nothing carries between bytes.
    uint64_t tags = ~(((x & kLow7) + kLow7) | x) & kHigh;
    return (tags * 0x0002040810204081ull) >> 56;
  }
};

/// Mask for the tail bytes [i, n) when fewer than a full lane remain
/// (0 < n - i < Sc::kWidth). Lines at least one lane wide use an
/// overlapping full load ending at the last byte — every byte read is
/// in-bounds line content, and the already-scanned bytes before `i` are
/// shifted out of the mask — so the copy-to-zeroed-buffer LoadPartial only
/// runs for lines shorter than the lane itself. Bit b of the result
/// corresponds to byte i + b.
template <class Sc, class MaskFn>
inline uint64_t TailMask(const char* p, size_t n, size_t i, MaskFn&& mask) {
  const size_t left = n - i;
  if (n >= Sc::kWidth) {
    return mask(Sc::Load(p + n - Sc::kWidth)) >> (Sc::kWidth - left);
  }
  return mask(Sc::LoadPartial(p + i, left)) & LowMask(left);
}

/// Index of the first byte at or after `i` whose `mask(block)` bit is set;
/// `n` when none. `mask` must produce a dense per-byte bitmask.
template <class Sc, class MaskFn>
inline size_t ScanFor(const char* p, size_t n, size_t i, MaskFn&& mask) {
  while (i + Sc::kWidth <= n) {
    uint64_t m = mask(Sc::Load(p + i));
    if (m != 0) return i + std::countr_zero(m);
    i += Sc::kWidth;
  }
  if (i < n) {
    uint64_t m = TailMask<Sc>(p, n, i, mask);
    if (m != 0) return i + std::countr_zero(m);
  }
  return n;
}

// ---------------------------------------------------------------- CSV

/// Compile-time dialect classes: the delimiter byte is baked into the
/// instantiation for the common dialects so the block loop compares against
/// an immediate; kRuntime reads it from the dialect once per call.
constexpr int kRuntimeDelim = -1;

template <class Sc, int kDelim>
inline char ResolveDelim(const CsvDialect& d) {
  return kDelim == kRuntimeDelim ? d.delimiter : static_cast<char>(kDelim);
}

/// TokenizeStarts for unquoted dialects: one streaming pass over the
/// delimiter mask (the scalar loop re-derives each start from the previous
/// field's end; with quoting off those are exactly the delimiter positions
/// plus one).
template <class Sc, int kDelim>
int TokenizeUnquoted(std::string_view line, const CsvDialect& d, int upto,
                     uint32_t* starts) {
  starts[0] = 0;
  if (upto == 0) return 1;
  const char delim = ResolveDelim<Sc, kDelim>(d);
  const char* p = line.data();
  const size_t n = line.size();
  int attr = 0;
  size_t i = 0;
  auto eq_delim = [delim](typename Sc::Block b) { return Sc::Eq(b, delim); };
  while (i < n) {
    uint64_t m;
    size_t step;
    if (i + Sc::kWidth <= n) {
      m = Sc::Eq(Sc::Load(p + i), delim);
      step = Sc::kWidth;
    } else {
      step = n - i;
      m = TailMask<Sc>(p, n, i, eq_delim);
    }
    while (m != 0) {
      starts[++attr] =
          static_cast<uint32_t>(i + std::countr_zero(m)) + 1;
      if (attr == upto) return attr + 1;
      m &= m - 1;
    }
    i += step;
  }
  return attr + 1;
}

/// FindFieldForward for unquoted dialects: walk the delimiter mask from
/// `from_offset`, reporting each crossing, until `to_attr` starts.
template <class Sc, int kDelim>
uint32_t FindForwardUnquoted(std::string_view line, const CsvDialect& d,
                             int from_attr, uint32_t from_offset, int to_attr,
                             const PositionSink* sink) {
  if (from_attr >= to_attr) return from_offset;
  const char delim = ResolveDelim<Sc, kDelim>(d);
  const char* p = line.data();
  const size_t n = line.size();
  int attr = from_attr;
  size_t i = from_offset;
  auto eq_delim = [delim](typename Sc::Block b) { return Sc::Eq(b, delim); };
  while (i < n) {
    uint64_t m;
    size_t step;
    if (i + Sc::kWidth <= n) {
      m = Sc::Eq(Sc::Load(p + i), delim);
      step = Sc::kWidth;
    } else {
      step = n - i;
      m = TailMask<Sc>(p, n, i, eq_delim);
    }
    while (m != 0) {
      uint32_t pos = static_cast<uint32_t>(i + std::countr_zero(m)) + 1;
      ++attr;
      if (sink != nullptr) sink->Record(attr, pos);
      if (attr == to_attr) return pos;
      m &= m - 1;
    }
    i += step;
  }
  return kInvalidOffset;
}

/// CountFields for unquoted dialects: 1 + popcount of the delimiter mask.
template <class Sc, int kDelim>
int CountUnquoted(std::string_view line, const CsvDialect& d) {
  const char delim = ResolveDelim<Sc, kDelim>(d);
  const char* p = line.data();
  const size_t n = line.size();
  int count = 1;
  size_t i = 0;
  while (i + Sc::kWidth <= n) {
    count += std::popcount(Sc::Eq(Sc::Load(p + i), delim));
    i += Sc::kWidth;
  }
  if (i < n) {
    count += std::popcount(TailMask<Sc>(
        p, n, i, [delim](typename Sc::Block b) { return Sc::Eq(b, delim); }));
  }
  return count;
}

/// SkipQuoted with block scanning: from the opening quote, hop between
/// quote characters, treating "" pairs as escaped content.
template <class Sc>
uint32_t SkipQuotedK(std::string_view line, char quote, uint32_t pos) {
  const char* p = line.data();
  const size_t n = line.size();
  size_t i = pos + 1;
  while (i < n) {
    size_t q =
        ScanFor<Sc>(p, n, i, [quote](typename Sc::Block b) {
          return Sc::Eq(b, quote);
        });
    if (q >= n) return static_cast<uint32_t>(n);
    if (q + 1 < n && p[q + 1] == quote) {
      i = q + 2;  // escaped quote
      continue;
    }
    return static_cast<uint32_t>(q + 1);
  }
  return static_cast<uint32_t>(n);
}

/// ScanFieldEnd (tokenizer.cc) with block scanning; handles both the quoted
/// and unquoted field forms of a quoting dialect.
template <class Sc>
uint32_t FieldEndQuoting(std::string_view line, const CsvDialect& d,
                         uint32_t begin) {
  const char* p = line.data();
  const size_t n = line.size();
  const char delim = d.delimiter;
  if (begin < n && p[begin] == d.quote) {
    uint32_t after = SkipQuotedK<Sc>(line, d.quote, begin);
    // Trailing junk after a closing quote is tolerated up to the delimiter.
    return static_cast<uint32_t>(
        ScanFor<Sc>(p, n, after, [delim](typename Sc::Block b) {
          return Sc::Eq(b, delim);
        }));
  }
  return static_cast<uint32_t>(
      ScanFor<Sc>(p, n, begin, [delim](typename Sc::Block b) {
        return Sc::Eq(b, delim);
      }));
}

// The quoting state machine cannot stream one mask (a delimiter's meaning
// depends on quote state), so the quoted variants mirror the scalar
// field-by-field loops with FieldEndQuoting as the accelerated step.

template <class Sc>
int TokenizeQuoting(std::string_view line, const CsvDialect& d, int upto,
                    uint32_t* starts) {
  int found = 0;
  uint32_t pos = 0;
  for (int attr = 0; attr <= upto; ++attr) {
    starts[attr] = pos;
    ++found;
    if (attr == upto) break;
    uint32_t end = FieldEndQuoting<Sc>(line, d, pos);
    if (end >= line.size()) break;
    pos = end + 1;
  }
  return found;
}

template <class Sc>
uint32_t FindForwardQuoting(std::string_view line, const CsvDialect& d,
                            int from_attr, uint32_t from_offset, int to_attr,
                            const PositionSink* sink) {
  uint32_t pos = from_offset;
  for (int attr = from_attr; attr < to_attr; ++attr) {
    uint32_t end = FieldEndQuoting<Sc>(line, d, pos);
    if (end >= line.size()) return kInvalidOffset;
    pos = end + 1;
    if (sink != nullptr) sink->Record(attr + 1, pos);
  }
  return pos;
}

template <class Sc>
int CountQuoting(std::string_view line, const CsvDialect& d) {
  int count = 1;
  uint32_t pos = 0;
  while (true) {
    uint32_t end = FieldEndQuoting<Sc>(line, d, pos);
    if (end >= line.size()) break;
    pos = end + 1;
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------- JSONL

/// Stage 1: classify every record byte into the structural bitmaps, then
/// resolve backslash escapes (parse_kernels.cc) to mark consumed quotes.
template <class Sc>
void BuildJsonBitmaps(std::string_view s, JsonBitmaps* bm) {
  const char* p = s.data();
  const size_t n = s.size();
  bm->Reset(n);
  const size_t nwords = bm->quote.size();
  for (size_t w = 0; w < nwords; ++w) {
    const size_t base = w << 6;
    const size_t limit = std::min<size_t>(64, n - base);
    uint64_t quote = 0, backslash = 0, container = 0, literal = 0;
    size_t off = 0;
    while (off < limit) {
      typename Sc::Block b;
      size_t step;
      if (base + off + Sc::kWidth <= n) {
        b = Sc::Load(p + base + off);
        step = Sc::kWidth;
      } else {
        step = n - (base + off);
        b = Sc::LoadPartial(p + base + off, step);
      }
      const uint64_t valid = LowMask(step);
      uint64_t mq = Sc::Eq(b, '"') & valid;
      uint64_t mb = Sc::Eq(b, '\\') & valid;
      uint64_t mopen = (Sc::Eq(b, '{') | Sc::Eq(b, '[')) & valid;
      uint64_t mclose = (Sc::Eq(b, '}') | Sc::Eq(b, ']')) & valid;
      uint64_t mws = (Sc::Eq(b, ',') | Sc::Eq(b, ' ') | Sc::Eq(b, '\t') |
                      Sc::Eq(b, '\r') | Sc::Eq(b, '\n')) &
                     valid;
      quote |= mq << off;
      backslash |= mb << off;
      container |= (mq | mopen | mclose) << off;
      literal |= (mws | mclose) << off;
      off += step;
    }
    bm->quote[w] = quote;
    bm->backslash[w] = backslash;
    bm->container[w] = container;
    bm->literal_end[w] = literal;
  }
  ResolveJsonEscapes(bm);
}

/// SkipJsonString (json_text.cc) with block scanning: hop between '"' and
/// '\\' occurrences; a backslash consumes the following byte.
template <class Sc>
size_t JsonSkipStringK(std::string_view s, size_t i) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t j = i + 1;
  while (j < n) {
    size_t q = ScanFor<Sc>(p, n, j, [](typename Sc::Block b) {
      return Sc::Eq(b, '"') | Sc::Eq(b, '\\');
    });
    if (q >= n) return n;
    if (p[q] == '\\') {
      j = q + 2;
      continue;
    }
    return q + 1;
  }
  return n;
}

/// SkipJsonValue (json_text.cc) with block scanning.
template <class Sc>
size_t JsonSkipValueK(std::string_view s, size_t i) {
  const char* p = s.data();
  const size_t n = s.size();
  if (i >= n) return n;
  if (p[i] == '"') return JsonSkipStringK<Sc>(s, i);
  if (p[i] == '{' || p[i] == '[') {
    int depth = 0;
    size_t j = i;
    while (j < n) {
      size_t q = ScanFor<Sc>(p, n, j, [](typename Sc::Block b) {
        return Sc::Eq(b, '"') | Sc::Eq(b, '{') | Sc::Eq(b, '}') |
               Sc::Eq(b, '[') | Sc::Eq(b, ']');
      });
      if (q >= n) return n;
      char c = p[q];
      if (c == '"') {
        j = JsonSkipStringK<Sc>(s, q);
        continue;
      }
      if (c == '{' || c == '[') {
        ++depth;
      } else {
        --depth;
        if (depth == 0) return q + 1;
      }
      j = q + 1;
    }
    return n;
  }
  // Scalar literal: runs to the first ',', '}', ']' or whitespace.
  return ScanFor<Sc>(p, n, i, [](typename Sc::Block b) {
    return Sc::Eq(b, ',') | Sc::Eq(b, '}') | Sc::Eq(b, ']') |
           Sc::Eq(b, ' ') | Sc::Eq(b, '\t') | Sc::Eq(b, '\r') |
           Sc::Eq(b, '\n');
  });
}

// ---------------------------------------------------------------- table

/// The ParseKernels entry points for one scanner, with the per-call dialect
/// dispatch to the compile-time variants.
template <class Sc>
struct KernelOps {
  static size_t FindNewline(const char* p, size_t n) {
    return ScanFor<Sc>(p, n, 0, [](typename Sc::Block b) {
      return Sc::Eq(b, '\n');
    });
  }

  static int Tokenize(std::string_view line, const CsvDialect& d, int upto,
                      uint32_t* starts) {
    if (d.quoting) return TokenizeQuoting<Sc>(line, d, upto, starts);
    switch (d.delimiter) {
      case ',': return TokenizeUnquoted<Sc, ','>(line, d, upto, starts);
      case '\t': return TokenizeUnquoted<Sc, '\t'>(line, d, upto, starts);
      case '|': return TokenizeUnquoted<Sc, '|'>(line, d, upto, starts);
      default:
        return TokenizeUnquoted<Sc, kRuntimeDelim>(line, d, upto, starts);
    }
  }

  static uint32_t FindForward(std::string_view line, const CsvDialect& d,
                              int from_attr, uint32_t from_offset,
                              int to_attr, const PositionSink* sink) {
    if (d.quoting) {
      return FindForwardQuoting<Sc>(line, d, from_attr, from_offset, to_attr,
                                    sink);
    }
    switch (d.delimiter) {
      case ',':
        return FindForwardUnquoted<Sc, ','>(line, d, from_attr, from_offset,
                                            to_attr, sink);
      case '\t':
        return FindForwardUnquoted<Sc, '\t'>(line, d, from_attr, from_offset,
                                             to_attr, sink);
      case '|':
        return FindForwardUnquoted<Sc, '|'>(line, d, from_attr, from_offset,
                                            to_attr, sink);
      default:
        return FindForwardUnquoted<Sc, kRuntimeDelim>(
            line, d, from_attr, from_offset, to_attr, sink);
    }
  }

  static uint32_t FieldEnd(std::string_view line, const CsvDialect& d,
                           uint32_t begin) {
    if (d.quoting) return FieldEndQuoting<Sc>(line, d, begin);
    const char delim = d.delimiter;
    return static_cast<uint32_t>(
        ScanFor<Sc>(line.data(), line.size(), begin,
                    [delim](typename Sc::Block b) {
                      return Sc::Eq(b, delim);
                    }));
  }

  static int Count(std::string_view line, const CsvDialect& d) {
    if (d.quoting) return CountQuoting<Sc>(line, d);
    switch (d.delimiter) {
      case ',': return CountUnquoted<Sc, ','>(line, d);
      case '\t': return CountUnquoted<Sc, '\t'>(line, d);
      case '|': return CountUnquoted<Sc, '|'>(line, d);
      default: return CountUnquoted<Sc, kRuntimeDelim>(line, d);
    }
  }

  static void JsonBitmapsFn(std::string_view s, JsonBitmaps* out) {
    BuildJsonBitmaps<Sc>(s, out);
  }
  static size_t JsonSkipString(std::string_view s, size_t i) {
    return JsonSkipStringK<Sc>(s, i);
  }
  static size_t JsonSkipValue(std::string_view s, size_t i) {
    return JsonSkipValueK<Sc>(s, i);
  }

  static ParseKernels Table(KernelLevel level, const char* name) {
    return ParseKernels{
        level,          name,
        &FindNewline,   &Tokenize,
        &FindForward,   &FieldEnd,
        &Count,         &JsonBitmapsFn,
        &JsonSkipString, &JsonSkipValue,
        &KernelParseInt64, &KernelParseDouble, &KernelParseDate,
    };
  }
};

}  // namespace kern
}  // namespace nodb

#endif  // NODB_RAW_PARSE_KERNELS_IMPL_H_
