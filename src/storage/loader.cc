#include "storage/loader.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "csv/csv_adapter.h"
#include "util/stopwatch.h"

namespace nodb {

Result<uint64_t> ForEachRawRow(const RawSourceAdapter& adapter,
                               const std::vector<int>& attrs,
                               const RawRowFn& fn,
                               const std::atomic<bool>* stop) {
  const RawTraits& traits = adapter.traits();
  const Schema& schema = adapter.schema();
  const int ncols = schema.num_columns();
  const int nslots = static_cast<int>(attrs.size());
  const int max_attr = nslots > 0 ? attrs.back() : 0;

  // attr -> slot in attrs (-1 untracked), the PositionSink contract.
  std::vector<int> slot_of(ncols, -1);
  for (int s = 0; s < nslots; ++s) slot_of[attrs[s]] = s;

  std::vector<uint32_t> pos(std::max(nslots, 1), kNoFieldPos);
  bool record_corrupt = false;
  const PositionSink sink{slot_of.data(), pos.data(), &record_corrupt};

  // Dense batch tokenization when the format has it (same fallback rule as
  // the scan: a -1 on the first record drops to the incremental walk).
  bool use_dense = true;
  std::vector<uint32_t> dense_starts(max_attr + 1);

  std::vector<Value> values(nslots);
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<RecordCursor> cursor,
                        adapter.OpenCursor());
  RawRowView view;
  view.values = values.data();

  RecordRef rec;
  uint64_t n = 0;
  while (true) {
    if (stop != nullptr && (n & 255) == 0 &&
        stop->load(std::memory_order_relaxed)) {
      return Status::Cancelled("raw row sweep stopped");
    }
    NODB_ASSIGN_OR_RETURN(bool has, cursor->Next(&rec));
    if (!has) break;

    record_corrupt = false;
    int dense_nf = -1;
    if (use_dense) {
      dense_nf = adapter.TokenizeRecord(rec, max_attr, dense_starts.data());
      if (dense_nf < 0) use_dense = false;
    }
    if (dense_nf >= 0) {
      for (int s = 0; s < nslots; ++s) {
        int a = attrs[s];
        pos[s] = a < dense_nf ? dense_starts[a] : kAbsentFieldPos;
      }
    } else {
      // Incremental forward walk from the nearest resolved tracked field
      // (the scan's cold path without a positional map). Full-record
      // tokenizers walk at most once; tracked fields still unresolved
      // afterwards are definitively absent.
      std::fill(pos.begin(), pos.end(), kNoFieldPos);
      if (traits.attr0_at_start && nslots > 0 && attrs[0] == 0) pos[0] = 0;
      bool record_walked = false;
      int below = -1;
      for (int s = 0; s < nslots; ++s) {
        if (pos[s] == kNoFieldPos &&
            !(traits.full_record_tokenize && record_walked)) {
          int from_attr = below >= 0 ? attrs[below] : -1;
          uint32_t from_pos = below >= 0 ? pos[below] : 0;
          uint32_t p = adapter.FindForward(rec, from_attr, from_pos,
                                           attrs[s], sink);
          if (pos[s] == kNoFieldPos) pos[s] = p;
          record_walked = true;
          if (traits.full_record_tokenize) {
            for (int t = 0; t < nslots; ++t) {
              if (pos[t] == kNoFieldPos) pos[t] = kAbsentFieldPos;
            }
          }
        }
        if (pos[s] != kNoFieldPos && pos[s] != kAbsentFieldPos) below = s;
      }
    }
    if (record_corrupt) {
      return Status::Corruption("corrupt raw record at offset " +
                                std::to_string(rec.offset) + " of '" +
                                std::string(adapter.path()) + "'");
    }

    for (int s = 0; s < nslots; ++s) {
      int a = attrs[s];
      uint32_t p = pos[s];
      // The scan's NULL rule: unknown, absent, or past the record end.
      if (p == kNoFieldPos || p == kAbsentFieldPos || p > rec.data.size()) {
        values[s] = Value::Null(schema.column(a).type);
        continue;
      }
      uint32_t next_pos = kNoFieldPos;
      if (dense_nf >= 0) {
        if (a + 1 < dense_nf) next_pos = dense_starts[a + 1];
      } else if (s + 1 < nslots && attrs[s + 1] == a + 1 &&
                 pos[s + 1] != kAbsentFieldPos) {
        next_pos = pos[s + 1];
      }
      uint32_t end = adapter.FieldEnd(rec, a, p, next_pos);
      NODB_ASSIGN_OR_RETURN(values[s], adapter.ParseField(rec, a, p, end));
    }

    view.index = n;
    view.offset = rec.offset;
    NODB_RETURN_IF_ERROR(fn(view));
    ++n;
  }
  return n;
}

namespace {

/// Shared bulk-load driver: adapter-hook decode, `append(row)` per record.
template <typename AppendFn>
Result<LoadResult> LoadCsv(const std::string& csv_path,
                           const CsvDialect& dialect, const Schema& schema,
                           const ParseKernels* kernels, AppendFn&& append) {
  Stopwatch timer;
  NODB_ASSIGN_OR_RETURN(
      std::unique_ptr<CsvAdapter> adapter,
      CsvAdapter::Make(csv_path, schema, dialect, nullptr, kernels));
  const int ncols = schema.num_columns();
  std::vector<int> attrs(ncols);
  std::iota(attrs.begin(), attrs.end(), 0);
  Row row(ncols);
  NODB_ASSIGN_OR_RETURN(
      uint64_t rows,
      ForEachRawRow(*adapter, attrs, [&](RawRowView& v) -> Status {
        for (int c = 0; c < ncols; ++c) row[c] = std::move(v.values[c]);
        return append(row);
      }));
  LoadResult result;
  result.rows = rows;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<LoadResult> LoadCsvToHeap(const std::string& csv_path,
                                 const CsvDialect& dialect, TableHeap* heap,
                                 const ParseKernels* kernels) {
  NODB_ASSIGN_OR_RETURN(
      LoadResult result,
      LoadCsv(csv_path, dialect, heap->schema(), kernels,
              [heap](const Row& row) { return heap->Append(row); }));
  Stopwatch finish;
  NODB_RETURN_IF_ERROR(heap->FinishLoad());
  result.seconds += finish.ElapsedSeconds();
  return result;
}

Result<LoadResult> LoadCsvToCompact(const std::string& csv_path,
                                    const CsvDialect& dialect,
                                    CompactTable* table,
                                    const ParseKernels* kernels) {
  NODB_ASSIGN_OR_RETURN(
      LoadResult result,
      LoadCsv(csv_path, dialect, table->schema(), kernels,
              [table](const Row& row) { return table->Append(row); }));
  Stopwatch finish;
  NODB_RETURN_IF_ERROR(table->FinishLoad());
  result.seconds += finish.ElapsedSeconds();
  return result;
}

}  // namespace nodb
