#ifndef NODB_EXEC_PARALLEL_RAW_SCAN_H_
#define NODB_EXEC_PARALLEL_RAW_SCAN_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/raw_scan.h"
#include "util/thread_pool.h"

namespace nodb {

/// Morsel-driven parallel variant of the NoDB access method (§4): the raw
/// file is split into record-aligned morsels (the adapter's
/// FindRecordBoundary hook snaps arbitrary byte offsets to record starts —
/// newlines for delimited text, stride multiples for fixed-width binary),
/// pool workers tokenize/parse disjoint morsels concurrently, and a
/// reorder stage re-emits their output in file order — so the operator
/// keeps the exact single-consumer batched-cursor contract and row order
/// of the serial RawScanOp.
///
/// The adaptive structures stay warm-compatible with the serial path:
///
///  * each worker stages row starts and discovered attribute positions in
///    a private PmapFragment; the merge step re-bases it to global tuple
///    indices (known once all earlier morsels finished) and installs it
///    into the shared PositionalMap under the existing budget;
///  * parsed values ride along per morsel and the merge step stitches them
///    into stripe-aligned ColumnCache chunks — population is single-writer
///    (only the merge thread Puts), so warm scans see the same chunks a
///    serial scan would have produced;
///  * statistics values are replayed into TableStats in file order at
///    merge time, keeping the sketches deterministic for a fixed thread
///    count.
///
/// Early Close() cancels outstanding morsels and joins the workers, so a
/// LIMIT-satisfied or abandoned cursor stops raw-file reads with at most
/// the in-flight window of morsels consumed (the byte-budget semantics the
/// cursor tests pin down).
///
/// When parallelism cannot help — one thread, a file too small to split,
/// or a fully-cached table where the serial scan never touches the file —
/// the operator transparently delegates to a serial RawScanOp, keeping
/// warm-path performance and structure state byte-for-byte identical.
class ParallelRawScanOp final : public Operator {
 public:
  /// `runtime`, `scan` and `pool` must outlive the operator. `num_threads`
  /// is the target worker count (>= 2; 1 is handled by the executor picking
  /// the serial operator). `morsel_bytes` 0 means auto-size.
  /// `control` (optional) is polled at merge boundaries, so a cancelled or
  /// deadline-expired query stops with a typed error after at most one
  /// reorder-window step; workers are joined and the epoch released.
  ParallelRawScanOp(TableRuntime* runtime, const PlannedScan* scan,
                    int working_width, InSituOptions options, int num_threads,
                    uint64_t morsel_bytes, ThreadPool* pool,
                    ExecControlPtr control = nullptr);

  /// Cancels outstanding work and joins the workers (abandon-without-Close
  /// error paths included).
  ~ParallelRawScanOp() override;

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  /// One unit of worker work: either a byte range of snapped record starts
  /// (variable-length formats) or a record-index range (fixed stride).
  struct Morsel {
    uint64_t begin = 0;  // byte offset or record index
    uint64_t end = 0;
    bool by_index = false;
  };

  /// Everything one worker learned from one morsel, handed to the merge
  /// stage through the reorder window.
  struct MorselResult {
    Status status;                 // first error hit inside the morsel
    bool ready = false;
    bool canceled = false;
    uint64_t records = 0;          // records consumed (qualifying or not)
    std::vector<Row> rows;         // qualifying output rows, file order
    PmapFragment frag;             // staged spine + positions
    /// Parsed values per cached attribute: values for the morsel's records
    /// [0, values.size()). A phase-2 column stops buffering at the first
    /// non-qualifying record (serial scans cache phase-2 columns only for
    /// fully-qualifying stripes; a shorter buffer makes the stitcher skip
    /// the affected stripes the same way).
    std::vector<std::vector<Value>> cache_vals;  // [attr] (empty if unused)
    /// Values to replay into TableStats, under the serial feeding rules
    /// (phase 1: every record; phase 2: qualifying records only).
    std::vector<std::vector<Value>> stats_vals;  // [attr] (empty if unused)
    /// Per-column access accounting (conversions performed in this morsel),
    /// flushed into the table's ColumnAccessTracker at merge time.
    std::vector<uint64_t> parsed_rows;   // [attr]
    std::vector<uint64_t> parsed_bytes;  // [attr]
  };

  /// A stripe being assembled from consecutive morsel contributions.
  struct PendingStripe {
    uint64_t stripe = 0;
    int filled = 0;
    std::vector<std::vector<Value>> vals;  // [attr]
    std::vector<bool> ok;                  // [attr] no gaps so far
  };

  Status PlanMorsels();
  /// Tops the pool up with worker tasks, enough to cover the morsels the
  /// reorder window currently exposes (mu_ held). Workers *exit* instead
  /// of blocking when the window is full or the morsels run out, and every
  /// merge re-tops the pool — so no pool thread is ever parked on this
  /// operator's progress, and any number of parallel scans can be open
  /// concurrently on one pool without deadlock.
  void SubmitWorkersLocked();
  void WorkerLoop();
  void ProcessMorsel(const Morsel& morsel, RecordCursor* cursor,
                     MorselResult* result);
  /// Merges result `merge_idx_` into pmap/cache/stats and opens the window.
  void MergeResult(MorselResult* result);
  void FlushPendingStripe(bool final_flush);
  void FinalizeEof();
  void CancelAndJoin();
  uint64_t KnownTotalTuples() const;
  bool FullyCached(uint64_t total) const;

  TableRuntime* runtime_;
  const PlannedScan* scan_;
  const int working_width_;
  const InSituOptions opts_;
  const int num_threads_;
  const uint64_t morsel_bytes_option_;
  ThreadPool* pool_;
  ExecControlPtr control_;

  // Fallback for the cases parallelism cannot help with.
  std::unique_ptr<RawScanOp> serial_;

  const RawSourceAdapter* adapter_ = nullptr;
  RawTraits traits_;
  int ncols_ = 0;
  int tuples_per_stripe_ = RawScanOp::kDefaultStripe;
  uint64_t epoch_token_ = 0;
  std::vector<int> phase1_attrs_;
  std::vector<int> phase2_attrs_;
  std::vector<int> output_attrs_;
  int max_token_attr_ = 0;
  std::vector<int> insert_attrs_;   // staged into pmap fragments
  std::vector<int> tracked_attrs_;  // sorted union: output + insert
  std::vector<int> slot_of_;        // attr -> slot in tracked_attrs_, -1
  std::vector<bool> cache_attr_;    // buffer parsed values for the stitcher
  std::vector<bool> stats_attr_;    // replay values into TableStats

  std::vector<Morsel> morsels_;
  int window_ = 2;

  // --- shared worker/consumer state (guarded by mu_; cancel_ is also
  //     polled locklessly inside the record loop) ---
  std::mutex mu_;
  std::condition_variable result_cv_;  // consumer: a result became ready
  std::condition_variable done_cv_;    // join: a worker task exited
  std::vector<MorselResult> slots_;
  size_t next_claim_ = 0;
  size_t merge_idx_ = 0;
  int active_tasks_ = 0;
  std::atomic<bool> cancel_{false};

  // --- consumer-only state ---
  bool opened_ = false;
  bool eof_ = false;
  std::vector<Row> out_rows_;  // rows of the morsel being emitted
  size_t out_idx_ = 0;
  uint64_t emitted_records_ = 0;  // global index of the next merged record
  PendingStripe pending_;
};

}  // namespace nodb

#endif  // NODB_EXEC_PARALLEL_RAW_SCAN_H_
