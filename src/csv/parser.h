#ifndef NODB_CSV_PARSER_H_
#define NODB_CSV_PARSER_H_

#include <string>
#include <string_view>

#include "csv/dialect.h"
#include "types/data_type.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

struct ParseKernels;

/// Removes the quoting layer from a raw field. For unquoted fields the input
/// view is returned unchanged; for quoted fields the unescaped content is
/// materialized into `*scratch` and a view of it returned.
std::string_view UnquoteField(std::string_view raw, const CsvDialect& dialect,
                              std::string* scratch);

/// Converts one raw field to a typed binary Value — the paper's expensive
/// "data type conversion" step that selective parsing defers or skips.
/// Empty fields become NULL. The two-argument form uses the scalar
/// conversion path; the kernel form routes int64/double/date through the
/// given table's conversion kernels (identical results by contract).
Result<Value> ParseCsvField(std::string_view raw, TypeId type,
                            const CsvDialect& dialect);
Result<Value> ParseCsvField(std::string_view raw, TypeId type,
                            const CsvDialect& dialect,
                            const ParseKernels& kernels);

}  // namespace nodb

#endif  // NODB_CSV_PARSER_H_
