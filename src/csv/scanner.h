#ifndef NODB_CSV_SCANNER_H_
#define NODB_CSV_SCANNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "io/file.h"
#include "util/result.h"

namespace nodb {

/// One raw record: its absolute file offset and its text (newline stripped).
struct LineRef {
  uint64_t offset = 0;
  std::string_view text;
};

/// Streaming record reader over a raw file. Reads the file in large chunks,
/// splits on '\n' (an optional preceding '\r' is stripped), and reassembles
/// records that straddle chunk boundaries. The returned string_view is valid
/// until the next call to Next() or SeekTo().
class CsvScanner {
 public:
  /// `file` must outlive the scanner.
  explicit CsvScanner(const RandomAccessFile* file,
                      uint64_t buffer_size = 1 << 20);

  /// Reads the next record into `*line`; returns false at end of file.
  /// A final record without a trailing newline is returned.
  Result<bool> Next(LineRef* line);

  /// Repositions the scanner at `offset`, which must be the first byte of a
  /// record (offset 0 or one past a '\n').
  void SeekTo(uint64_t offset);

  /// File offset of the byte that the next call to Next() starts reading at.
  uint64_t position() const { return next_offset_; }

 private:
  /// Ensures buffer_ holds the bytes at [buffer_start_, ...) covering
  /// next_offset_ with at least one byte (unless at EOF).
  Status Refill();

  const RandomAccessFile* file_;
  std::vector<char> buffer_;
  uint64_t capacity_;
  uint64_t buffer_start_ = 0;  // file offset of buffer_[0]
  uint64_t buffer_len_ = 0;
  uint64_t next_offset_ = 0;  // file offset of the next record's first byte
};

}  // namespace nodb

#endif  // NODB_CSV_SCANNER_H_
