#ifndef NODB_EXEC_COMPACT_SCAN_H_
#define NODB_EXEC_COMPACT_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"

namespace nodb {

/// Full scan over a packed-row table (the "DBMS X" baseline). Same contract
/// as HeapScanOp but streaming 64 KiB blocks with lean per-tuple decoding.
class CompactScanOp final : public Operator {
 public:
  CompactScanOp(TableRuntime* runtime, const PlannedScan* scan,
                int working_width);

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  TableRuntime* runtime_;
  const PlannedScan* scan_;
  int working_width_;
  std::vector<bool> needed_;
  std::unique_ptr<CompactTable::Scanner> scanner_;
  Row table_row_;
};

}  // namespace nodb

#endif  // NODB_EXEC_COMPACT_SCAN_H_
