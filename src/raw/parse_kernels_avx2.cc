// This translation unit is compiled with -mavx2 (set per-file in
// CMakeLists.txt) when the compiler supports it. Nothing here executes
// unless Avx2KernelsOrNull() in parse_kernels.cc — compiled for the
// baseline ISA — has confirmed AVX2 via __builtin_cpu_supports first.

#include "raw/parse_kernels.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "raw/parse_kernels_impl.h"

namespace nodb {

namespace kern {
namespace {

/// 32-byte scanner over AVX2.
struct Avx2Scanner {
  static constexpr size_t kWidth = 32;
  using Block = __m256i;

  static Block Load(const char* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static Block LoadPartial(const char* p, size_t n) {
    alignas(32) char buf[32] = {0};
    std::memcpy(buf, p, n);
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  }
  static uint64_t Eq(Block b, char c) {
    return static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(b, _mm256_set1_epi8(c))));
  }
};

}  // namespace
}  // namespace kern

const ParseKernels* Avx2KernelsRaw() {
  static const ParseKernels table =
      kern::KernelOps<kern::Avx2Scanner>::Table(KernelLevel::kAvx2, "avx2");
  return &table;
}

}  // namespace nodb

#else  // built without AVX2 codegen

namespace nodb {
const ParseKernels* Avx2KernelsRaw() { return nullptr; }
}  // namespace nodb

#endif
