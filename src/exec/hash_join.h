#ifndef NODB_EXEC_HASH_JOIN_H_
#define NODB_EXEC_HASH_JOIN_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace nodb {

/// In-memory hash join. The build side is a scan producing working rows
/// with the build table's column slice filled; only that slice is stored in
/// the hash table. Probe rows are working rows from the pipeline; on a key
/// match the build slice is copied into the (disjoint) slice of the output
/// row. Empty key lists degrade to a single-bucket cross join.
class HashJoinOp final : public Operator {
 public:
  /// `join` must outlive the operator. `build_offset`/`build_width` locate
  /// the build table's slice in the working row. `batch_size` sizes the
  /// internal build/probe batches.
  /// `control` (optional) is polled once per drained build batch (the
  /// build side is consumed entirely inside Open).
  HashJoinOp(OperatorPtr probe, OperatorPtr build, const PlannedJoin* join,
             int build_offset, int build_width,
             size_t batch_size = RowBatch::kDefaultCapacity,
             ExecControlPtr control = nullptr)
      : probe_(std::move(probe)), build_(std::move(build)), join_(join),
        build_offset_(build_offset), build_width_(build_width),
        control_(std::move(control)), probe_batch_(batch_size) {}

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  using Slice = std::vector<Value>;

  Result<Row> EvalKeys(const std::vector<ExprPtr>& keys, const Row& row) const;

  OperatorPtr probe_;
  OperatorPtr build_;
  const PlannedJoin* join_;
  int build_offset_;
  int build_width_;
  ExecControlPtr control_;

  std::unordered_map<Row, std::vector<Slice>, RowHasher, RowEq> table_;
  // Probe-side iteration state: position within the current probe batch and
  // within the current probe row's match list (an output batch may end mid
  // match list; the next call resumes there).
  RowBatch probe_batch_;
  size_t probe_size_ = 0;
  size_t probe_idx_ = 0;
  bool probe_done_ = false;
  const std::vector<Slice>* matches_ = nullptr;
  size_t match_idx_ = 0;
};

/// Hash semi/anti join implementing [NOT] EXISTS: builds a set of inner key
/// rows, then passes through outer rows whose keys are (not) present. Rows
/// with NULL keys never match (SQL semantics).
class SemiJoinOp final : public Operator {
 public:
  /// `semi` must outlive the operator. `inner` produces inner-table-arity
  /// rows that `semi->inner_keys` are bound against. `batch_size` sizes the
  /// internal batch the inner side is drained with.
  SemiJoinOp(OperatorPtr outer, OperatorPtr inner, const PlannedSemiJoin* semi,
             size_t batch_size = RowBatch::kDefaultCapacity,
             ExecControlPtr control = nullptr)
      : outer_(std::move(outer)), inner_(std::move(inner)), semi_(semi),
        batch_size_(batch_size), control_(std::move(control)) {}

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  OperatorPtr outer_;
  OperatorPtr inner_;
  const PlannedSemiJoin* semi_;
  size_t batch_size_;
  ExecControlPtr control_;
  std::unordered_set<Row, RowHasher, RowEq> keys_;
};

}  // namespace nodb

#endif  // NODB_EXEC_HASH_JOIN_H_
