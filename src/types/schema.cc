#include "types/schema.h"

namespace nodb {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::AddColumn(Column column) {
  columns_.push_back(std::move(column));
  return static_cast<int>(columns_.size()) - 1;
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += TypeIdToString(columns_[i].type);
  }
  return out;
}

}  // namespace nodb
