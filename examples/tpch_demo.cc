// TPC-H head-to-head: the same decision-support queries answered (a) in
// situ over raw CSV files and (b) by a load-first engine — the paper's §5.2
// experiment as a runnable demo. Prints the data-to-first-answer and
// cumulative times so the trade-off is visible end to end.
//
//   ./tpch_demo [scale_factor]   (default 0.005)

#include <cstdio>
#include <cstdlib>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/stopwatch.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

using namespace nodb;

namespace {

/// Runs `sql` through the streaming cursor API, materializing the rows only
/// because the demo cross-checks both engines' answers afterwards.
Result<QueryResult> RunStreaming(Database* db, const std::string& sql) {
  Stopwatch timer;
  NODB_ASSIGN_OR_RETURN(QueryCursor cursor, db->Query(sql));
  QueryResult result;
  result.schema = cursor.schema();
  RowBatch batch = cursor.MakeBatch();
  while (true) {
    NODB_ASSIGN_OR_RETURN(size_t n, cursor.Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) result.rows.push_back(batch[i]);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.005;
  TempDir scratch;
  TpchSpec spec;
  spec.scale_factor = sf;
  printf("generating TPC-H SF=%.3f under %s ...\n", sf,
         scratch.path().c_str());
  if (!GenerateTpch(scratch.path(), spec).ok()) return 1;

  const std::vector<std::string> tables = {"customer", "orders", "lineitem",
                                           "nation", "part"};

  // (a) NoDB: register and query immediately.
  auto raw = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  Stopwatch raw_clock;
  for (const std::string& t : tables) {
    if (!raw->RegisterCsv(t, scratch.File(t + ".csv"), TpchSchema(t)).ok()) {
      return 1;
    }
  }
  double raw_setup = raw_clock.ElapsedSeconds();

  // (b) Traditional: load everything first.
  auto loaded = MakeEngine(SystemUnderTest::kPostgreSQL);
  Stopwatch load_clock;
  for (const std::string& t : tables) {
    auto load = loaded->LoadCsv(t, scratch.File(t + ".csv"), TpchSchema(t));
    if (!load.ok()) {
      fprintf(stderr, "load failed: %s\n", load.status().ToString().c_str());
      return 1;
    }
  }
  double load_secs = load_clock.ElapsedSeconds();
  printf("\nsetup: PostgresRaw %.3fs (schema registration only)   "
         "PostgreSQL %.3fs (full load)\n\n",
         raw_setup, load_secs);

  printf("%-6s %-22s %-18s %-12s\n", "query", "PostgresRaw (in situ)",
         "PostgreSQL (loaded)", "same answer?");
  double raw_total = raw_setup, loaded_total = load_secs;
  for (int q : TpchQueryNumbers()) {
    std::string sql = TpchQuery(q);
    auto raw_result = RunStreaming(raw.get(), sql);
    auto loaded_result = RunStreaming(loaded.get(), sql);
    if (!raw_result.ok() || !loaded_result.ok()) {
      fprintf(stderr, "Q%d failed\n", q);
      return 1;
    }
    raw_total += raw_result->seconds;
    loaded_total += loaded_result->seconds;
    bool same =
        raw_result->Canonical(true) == loaded_result->Canonical(true);
    printf("Q%-5d %18.3fs %18.3fs   %s\n", q, raw_result->seconds,
           loaded_result->seconds, same ? "yes" : "NO!");
    if (!same) return 1;
  }
  printf("\ncumulative data-to-answers: PostgresRaw %.3fs vs "
         "PostgreSQL %.3fs (incl. load)\n",
         raw_total, loaded_total);

  // Show one actual result, so this is visibly a real query engine.
  auto q1 = RunStreaming(raw.get(), TpchQuery(1));
  printf("\nTPC-H Q1 over the raw lineitem file:\n%s",
         q1->ToString(6).c_str());
  return 0;
}
