#include "types/value.h"

#include <cassert>
#include <functional>

#include "util/str_conv.h"

namespace nodb {

int Value::Compare(const Value& other) const {
  assert(!is_null_ && !other.is_null_);
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    assert(type_ == TypeId::kString && other.type_ == TypeId::kString);
    int c = str_.compare(other.str_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Same-type integer-backed comparison avoids double rounding.
  if (type_ == other.type_ && type_ != TypeId::kDouble) {
    int64_t a = payload_.i64, b = other.payload_.i64;
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  if (is_null_) return 0x6e756c6cULL;  // arbitrary tag for NULL
  switch (type_) {
    case TypeId::kString:
      return std::hash<std::string>{}(str_);
    case TypeId::kDouble: {
      // Normalize -0.0 to +0.0 so equal doubles hash equally.
      double d = payload_.f64 == 0.0 ? 0.0 : payload_.f64;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return std::hash<uint64_t>{}(bits);
    }
    default:
      return std::hash<int64_t>{}(payload_.i64);
  }
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  std::string out;
  switch (type_) {
    case TypeId::kInt64:
      AppendInt64(&out, payload_.i64);
      return out;
    case TypeId::kDouble:
      AppendDouble(&out, payload_.f64);
      return out;
    case TypeId::kString:
      return str_;
    case TypeId::kDate:
      return FormatDate(static_cast<int32_t>(payload_.i64));
    case TypeId::kBool:
      return payload_.i64 != 0 ? "true" : "false";
  }
  return out;
}

Result<Value> Value::ParseAs(TypeId type, std::string_view text) {
  if (text.empty()) return Null(type);
  switch (type) {
    case TypeId::kInt64: {
      NODB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Int64(v);
    }
    case TypeId::kDouble: {
      NODB_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Double(v);
    }
    case TypeId::kString:
      return String(text);
    case TypeId::kDate: {
      NODB_ASSIGN_OR_RETURN(int32_t v, ParseDate(text));
      return Date(v);
    }
    case TypeId::kBool: {
      NODB_ASSIGN_OR_RETURN(bool v, ParseBool(text));
      return Bool(v);
    }
  }
  return Status::Internal("unreachable type in ParseAs");
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_ || is_null_ != other.is_null_) return false;
  if (is_null_) return true;
  if (type_ == TypeId::kString) return str_ == other.str_;
  if (type_ == TypeId::kDouble) return payload_.f64 == other.payload_.f64;
  return payload_.i64 == other.payload_.i64;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

}  // namespace nodb
