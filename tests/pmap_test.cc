#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "engine/engines.h"
#include "pmap/positional_map.h"
#include "pmap/temp_map.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

PositionalMap::Options SmallChunks(int tuples_per_chunk = 8) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = tuples_per_chunk;
  return opts;
}

// ---------------------------------------------------------------------
// Spine (row starts)
// ---------------------------------------------------------------------

TEST(PositionalMapSpine, RowStartsRoundTrip) {
  PositionalMap pm(4, SmallChunks());
  EXPECT_FALSE(pm.RowStart(0).has_value());
  pm.SetRowStart(0, 0);
  pm.SetRowStart(1, 17);
  pm.SetRowStart(2, 40);
  EXPECT_EQ(*pm.RowStart(0), 0u);
  EXPECT_EQ(*pm.RowStart(1), 17u);
  EXPECT_EQ(*pm.RowStart(2), 40u);
  EXPECT_FALSE(pm.RowStart(3).has_value());
}

TEST(PositionalMapSpine, ContiguousWatermark) {
  PositionalMap pm(4, SmallChunks());
  pm.SetRowStart(0, 0);
  pm.SetRowStart(2, 40);  // gap at 1
  EXPECT_EQ(pm.contiguous_rows_known(), 1u);
  pm.SetRowStart(1, 17);  // fills the gap; watermark jumps past 2
  EXPECT_EQ(pm.contiguous_rows_known(), 3u);
}

TEST(PositionalMapSpine, CrossesStripes) {
  PositionalMap pm(4, SmallChunks(4));
  for (uint64_t t = 0; t < 10; ++t) pm.SetRowStart(t, t * 100);
  EXPECT_EQ(pm.contiguous_rows_known(), 10u);
  EXPECT_EQ(*pm.RowStart(9), 900u);
}

// ---------------------------------------------------------------------
// Attribute positions
// ---------------------------------------------------------------------

TEST(PositionalMapAttrs, InsertAndLookup) {
  PositionalMap pm(10, SmallChunks());
  int chunk = pm.BeginStripeInsert(0, {3, 7});
  ASSERT_GE(chunk, 0);
  pm.InsertPosition(chunk, 0, 3, 12);
  pm.InsertPosition(chunk, 0, 7, 30);
  pm.InsertPosition(chunk, 1, 3, 13);
  pm.EndStripeInsert();

  EXPECT_EQ(*pm.Lookup(0, 3), 12u);
  EXPECT_EQ(*pm.Lookup(0, 7), 30u);
  EXPECT_EQ(*pm.Lookup(1, 3), 13u);
  EXPECT_FALSE(pm.Lookup(1, 7).has_value());  // hole
  EXPECT_FALSE(pm.Lookup(0, 5).has_value());  // never indexed
  EXPECT_EQ(pm.num_positions(), 3u);
}

TEST(PositionalMapAttrs, GroupReuseAcrossStripes) {
  // The same attribute combination maps to the same group (Fig. 2: the map
  // gains one vertical partition per queried combination).
  PositionalMap pm(10, SmallChunks());
  int c1 = pm.BeginStripeInsert(0, {3, 7});
  pm.EndStripeInsert();
  int c2 = pm.BeginStripeInsert(1, {7, 3});  // same combo, other order
  pm.EndStripeInsert();
  EXPECT_EQ(c1, c2);
}

TEST(PositionalMapAttrs, AnchorsBelowAndAbove) {
  PositionalMap pm(12, SmallChunks());
  int chunk = pm.BeginStripeInsert(0, {4, 8});
  pm.InsertPosition(chunk, 0, 4, 20);
  pm.InsertPosition(chunk, 0, 8, 44);
  pm.EndStripeInsert();

  // Paper example: looking for attr 9 with 4 and 8 indexed -> jump to 8.
  auto below = pm.AnchorAtOrBelow(0, 9);
  ASSERT_TRUE(below.has_value());
  EXPECT_EQ(below->attr, 8);
  EXPECT_EQ(below->rel_offset, 44u);
  // Looking for attr 6: nearest below is 4; nearest above is 8
  // (for backward tokenizing).
  auto b6 = pm.AnchorAtOrBelow(0, 6);
  ASSERT_TRUE(b6.has_value());
  EXPECT_EQ(b6->attr, 4);
  auto a6 = pm.AnchorAbove(0, 6);
  ASSERT_TRUE(a6.has_value());
  EXPECT_EQ(a6->attr, 8);
  // Exact attr counts as at-or-below anchor.
  EXPECT_EQ(pm.AnchorAtOrBelow(0, 4)->attr, 4);
  // Nothing below attr 2.
  EXPECT_FALSE(pm.AnchorAtOrBelow(0, 2).has_value());
}

TEST(PositionalMapAttrs, StripeHasAttrAndShareChunk) {
  PositionalMap pm(10, SmallChunks());
  int c = pm.BeginStripeInsert(0, {1, 2});
  pm.InsertPosition(c, 0, 1, 5);
  pm.EndStripeInsert();
  c = pm.BeginStripeInsert(0, {5});
  pm.InsertPosition(c, 0, 5, 25);
  pm.EndStripeInsert();

  EXPECT_TRUE(pm.StripeHasAttr(0, 1));
  EXPECT_TRUE(pm.StripeHasAttr(0, 5));
  EXPECT_FALSE(pm.StripeHasAttr(0, 3));
  EXPECT_FALSE(pm.StripeHasAttr(1, 1));
  // {1,2} share a chunk; {1,5} span two -> combination not shared.
  EXPECT_TRUE(pm.StripeAttrsShareChunk(0, {1, 2}));
  EXPECT_FALSE(pm.StripeAttrsShareChunk(0, {1, 5}));
}

TEST(PositionalMapAttrs, FillStripePositionsBulk) {
  PositionalMap pm(6, SmallChunks(4));
  int c = pm.BeginStripeInsert(0, {2});
  for (int t = 0; t < 3; ++t) {
    pm.InsertPosition(c, t, 2, 10 + t);
  }
  pm.EndStripeInsert();
  uint32_t out[4];
  EXPECT_EQ(pm.FillStripePositions(0, 2, out, 4), 3);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[2], 12u);
  EXPECT_EQ(out[3], PositionalMap::kUnknown);
  EXPECT_EQ(pm.FillStripePositions(0, 4, out, 4), 0);
}

TEST(PositionalMapAttrs, IndexedAttrsForStripe) {
  PositionalMap pm(10, SmallChunks());
  pm.BeginStripeInsert(0, {7, 3});
  pm.EndStripeInsert();
  pm.BeginStripeInsert(0, {5});
  pm.EndStripeInsert();
  EXPECT_EQ(pm.IndexedAttrsForStripe(0), (std::vector<int>{3, 5, 7}));
  EXPECT_TRUE(pm.IndexedAttrsForStripe(1).empty());
}

// ---------------------------------------------------------------------
// Budget / LRU / spill
// ---------------------------------------------------------------------

TEST(PositionalMapBudget, MemoryNeverExceedsBudget) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  // Budget fits only a couple of chunks (64 tuples * 1 attr * 4B = 256B).
  opts.budget_bytes = 700;
  PositionalMap pm(20, opts);
  for (int a = 0; a < 12; ++a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 100 + t));
    }
    pm.EndStripeInsert();
    EXPECT_LE(pm.memory_bytes(), opts.budget_bytes) << "after attr " << a;
  }
  EXPECT_GT(pm.counters().chunks_evicted, 0u);
}

TEST(PositionalMapBudget, LruEvictsOldestFirst) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  opts.budget_bytes = 1200;  // ~4 chunks of 256B + bookkeeping
  PositionalMap pm(20, opts);
  auto insert_attr = [&](int a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 100 + t));
    }
    pm.EndStripeInsert();
  };
  for (int a = 0; a < 4; ++a) insert_attr(a);
  // Touch attr 0 so it is most-recently used.
  EXPECT_TRUE(pm.Lookup(0, 0).has_value());
  insert_attr(4);  // forces one eviction: attr 1 is the LRU victim
  EXPECT_TRUE(pm.Lookup(0, 0).has_value());
  EXPECT_FALSE(pm.Lookup(0, 1).has_value());
}

TEST(PositionalMapBudget, SpillAndReload) {
  TempDir dir;
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  opts.budget_bytes = 700;
  opts.spill_dir = dir.path();
  PositionalMap pm(20, opts);
  auto insert_attr = [&](int a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 1000 + t));
    }
    pm.EndStripeInsert();
  };
  for (int a = 0; a < 8; ++a) insert_attr(a);
  EXPECT_GT(pm.counters().chunks_spilled, 0u);
  // Every attribute remains readable: spilled chunks reload transparently
  // with identical positions.
  for (int a = 0; a < 8; ++a) {
    for (int t = 0; t < 64; t += 13) {
      auto pos = pm.Lookup(t, a);
      ASSERT_TRUE(pos.has_value()) << "attr " << a << " tuple " << t;
      EXPECT_EQ(*pos, static_cast<uint32_t>(a * 1000 + t));
    }
  }
  EXPECT_GT(pm.counters().chunks_reloaded, 0u);
  EXPECT_LE(pm.memory_bytes(), opts.budget_bytes);
}

TEST(PositionalMapBudget, ClearDropsEverything) {
  PositionalMap pm(10, SmallChunks());
  pm.SetRowStart(0, 0);
  int c = pm.BeginStripeInsert(0, {1});
  pm.InsertPosition(c, 0, 1, 5);
  pm.EndStripeInsert();
  pm.Clear();
  EXPECT_EQ(pm.memory_bytes(), 0u);
  EXPECT_EQ(pm.num_positions(), 0u);
  EXPECT_FALSE(pm.Lookup(0, 1).has_value());
  EXPECT_FALSE(pm.RowStart(0).has_value());
  // Usable after Clear (the "drop and rebuild" maintenance property).
  c = pm.BeginStripeInsert(0, {1});
  pm.InsertPosition(c, 0, 1, 7);
  pm.EndStripeInsert();
  EXPECT_EQ(*pm.Lookup(0, 1), 7u);
}

// ---------------------------------------------------------------------
// TempMap (pre-fetching)
// ---------------------------------------------------------------------

TEST(PositionalMapBudget, AbandonedQueryReleasesItsEpoch) {
  // A query that dies mid-scan (parse error) abandons its pipeline without
  // the operator Close protocol. Its scan epoch must still end — a leaked
  // epoch keeps the errored scan's chunks eviction-protected forever, and
  // once they fill the budget every later scan's insert is declined (the
  // map wedges shut and stops learning).
  TempDir dir;
  std::string path = dir.File("t.csv");
  std::string content;
  for (int i = 0; i < 1999; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 2) + "," +
               std::to_string(i * 3) + "\n";
  }
  content += "xx,1,2\n";  // unconvertible `a` cell, hit at the very end
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  Schema schema{{"a", TypeId::kInt64},
                {"b", TypeId::kInt64},
                {"c", TypeId::kInt64}};

  EngineConfig cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  cfg.tuples_per_chunk = 64;
  // Room for the spine (2000 x 8 B = ~16 KiB, never evicted) plus a few
  // KiB of chunks: the errored scan fills the chunk budget by itself.
  cfg.pm_budget_bytes = 20 * 1024;
  Database db(cfg);
  ASSERT_TRUE(db.RegisterCsv("t", path, schema).ok());

  // Scan 1 errors on the last record, after installing attr-0 chunks for
  // every stripe under its epoch.
  auto bad = db.Execute("SELECT a FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument)
      << bad.status();

  // Scan 2 never parses the bad cell and wants chunks for new attributes;
  // admitting them requires evicting scan 1's chunks — only possible if
  // scan 1's epoch was released when its cursor was abandoned.
  auto ok = db.Execute("SELECT c FROM t WHERE b >= 0");
  ASSERT_TRUE(ok.ok()) << ok.status();
  PositionalMap* pm = db.runtime("t")->pmap.get();
  EXPECT_TRUE(pm->StripeHasAttr(0, 1));
  EXPECT_TRUE(pm->StripeHasAttr(0, 2));
}

TEST(PositionalMapAttrs, CombinationPolicyReindexesSpanningAttrs) {
  // §4.2 Adaptive Behavior: once a query's attributes live in *different*
  // chunks, index_combinations re-inserts the full combination into one
  // chunk — even though every attribute is already indexed. (Regression:
  // the fragment installer's already-indexed filter must not eat this.)
  TempDir dir;
  std::string path = dir.File("t.csv");
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 2) + "," +
               std::to_string(i * 3) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  Schema schema{{"a", TypeId::kInt64},
                {"b", TypeId::kInt64},
                {"c", TypeId::kInt64}};

  EngineConfig cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  cfg.index_combinations = true;
  cfg.index_intermediates = false;
  cfg.tuples_per_chunk = 64;
  Database db(cfg);
  ASSERT_TRUE(db.RegisterCsv("t", path, schema).ok());

  ASSERT_TRUE(db.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(db.Execute("SELECT c FROM t").ok());
  PositionalMap* pm = db.runtime("t")->pmap.get();
  EXPECT_TRUE(pm->StripeHasAttr(0, 0));
  EXPECT_TRUE(pm->StripeHasAttr(0, 2));
  EXPECT_FALSE(pm->StripeAttrsShareChunk(0, {0, 2}));

  ASSERT_TRUE(db.Execute("SELECT a, c FROM t").ok());
  EXPECT_TRUE(pm->StripeAttrsShareChunk(0, {0, 2}));
}

// ---------------------------------------------------------------------
// Fragment installs (the scan path, serial and parallel)
// ---------------------------------------------------------------------

/// Builds a fragment of `n` records tracking `attrs`, with synthetic row
/// starts (40 bytes apart) and positions attr*10 + record.
PmapFragment MakeFragment(const std::vector<int>& attrs, int n,
                          uint64_t first_offset = 0) {
  PmapFragment frag;
  frag.Reset(attrs);
  frag.Reserve(n);
  std::vector<uint32_t> pos(attrs.size());
  for (int r = 0; r < n; ++r) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      pos[i] = static_cast<uint32_t>(attrs[i] * 10 + r % 10);
    }
    frag.AddRecord(first_offset + static_cast<uint64_t>(r) * 40, pos.data());
  }
  return frag;
}

TEST(PmapFragmentTest, InstallSpansStripesAndFillsSpineAndPositions) {
  PositionalMap pm(6, SmallChunks(8));
  // 20 records starting at tuple 4: covers the tail of stripe 0, all of
  // stripe 1, and the head of stripe 2.
  PmapFragment frag = MakeFragment({0, 2, 5}, 20, 1000);
  uint64_t epoch = pm.BeginEpoch();
  pm.InstallFragment(frag, 4, epoch);
  pm.EndEpoch(epoch);

  for (int r = 0; r < 20; ++r) {
    uint64_t tuple = 4 + r;
    auto start = pm.RowStart(tuple);
    ASSERT_TRUE(start.has_value()) << tuple;
    EXPECT_EQ(*start, 1000 + static_cast<uint64_t>(r) * 40);
    for (int a : {0, 2, 5}) {
      auto p = pm.Lookup(tuple, a);
      ASSERT_TRUE(p.has_value()) << tuple << "/" << a;
      EXPECT_EQ(*p, static_cast<uint32_t>(a * 10 + r % 10));
    }
    EXPECT_FALSE(pm.Lookup(tuple, 1).has_value());
  }
  // Tuples before the fragment are unknown; the watermark starts at 0.
  EXPECT_FALSE(pm.RowStart(0).has_value());
  EXPECT_EQ(pm.contiguous_rows_known(), 0u);
}

TEST(PmapFragmentTest, ReinstallingIndexedAttrsAddsNothing) {
  PositionalMap pm(4, SmallChunks(8));
  PmapFragment frag = MakeFragment({1, 3}, 8);
  pm.InstallFragment(frag, 0, 0);
  uint64_t positions = pm.num_positions();
  uint64_t bytes = pm.memory_bytes();
  // A second install of the same attrs for the same stripe (a concurrent
  // scan that staged before the first one landed) must not duplicate the
  // chunk or the accounting.
  pm.InstallFragment(frag, 0, 0);
  EXPECT_EQ(pm.num_positions(), positions);
  EXPECT_EQ(pm.memory_bytes(), bytes);
}

TEST(PmapFragmentTest, UnknownPositionsLeaveHolesNotCounts) {
  PositionalMap pm(2, SmallChunks(8));
  PmapFragment frag;
  frag.Reset({0, 1});
  uint32_t pos[2] = {7, PositionalMap::kUnknown};
  frag.AddRecord(0, pos);
  pm.InstallFragment(frag, 0, 0);
  EXPECT_EQ(pm.num_positions(), 1u);
  EXPECT_TRUE(pm.Lookup(0, 0).has_value());
  EXPECT_FALSE(pm.Lookup(0, 1).has_value());
}

/// The satellite regression for the budget-accounting fix: the seed's
/// accounting assumed a single mutator (EndStripeInsert zeroed the
/// open-insert counter; eviction walked LRU state no one else could be
/// touching). Four workers concurrently installing far more than the
/// budget must leave the map consistent and within bounds.
TEST(PositionalMapBudget, ConcurrentFragmentInstallsOvercommitSafely) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  opts.budget_bytes = 128 * 1024;
  PositionalMap pm(8, opts);

  constexpr int kWorkers = 4;
  constexpr int kStripesPerWorker = 40;
  const std::vector<int> attrs{0, 1, 2, 3, 4, 5, 6, 7};
  // Two workers install inside live epochs (their fresh chunks are
  // admission-protected), two without (plain LRU fodder) — both paths
  // race on the shared accounting.
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      uint64_t epoch = (w % 2 == 0) ? pm.BeginEpoch() : 0;
      for (int s = 0; s < kStripesPerWorker; ++s) {
        const uint64_t first =
            (static_cast<uint64_t>(w) * kStripesPerWorker + s) * 64;
        PmapFragment frag = MakeFragment(attrs, 64, first * 40);
        pm.InstallFragment(frag, first, epoch);
      }
      if (epoch != 0) pm.EndEpoch(epoch);
    });
  }
  for (std::thread& t : workers) t.join();

  // Every worker wrote 40 stripes x (spine 512 B + 2 chunks x 1 KiB) —
  // ~400 KiB of chunk data against a 128 KiB budget. The spine is never
  // evicted; chunks must have been declined or evicted back to budget.
  const uint64_t spine_bytes =
      static_cast<uint64_t>(kWorkers) * kStripesPerWorker * 64 * 8;
  EXPECT_LE(pm.memory_bytes(), spine_bytes + opts.budget_bytes);
  EXPECT_GT(pm.counters().fragments_installed, 0u);

  // The map stays fully usable: spine complete, lookups either hit with
  // the installed value or miss cleanly (evicted/declined chunks).
  for (uint64_t tuple = 0; tuple < kWorkers * kStripesPerWorker * 64;
       tuple += 97) {
    ASSERT_TRUE(pm.RowStart(tuple).has_value()) << tuple;
    for (int a : attrs) {
      auto p = pm.Lookup(tuple, a);
      if (p.has_value()) {
        EXPECT_EQ(*p, static_cast<uint32_t>(a * 10 + (tuple % 64) % 10));
      }
    }
  }
  // With all epochs ended, a fresh over-budget install must still be
  // admitted by evicting old chunks — the budget can't wedge shut.
  uint64_t tail_epoch = pm.BeginEpoch();
  const uint64_t tail_first = kWorkers * kStripesPerWorker * 64;
  PmapFragment frag = MakeFragment(attrs, 64, tail_first * 40);
  pm.InstallFragment(frag, tail_first, tail_epoch);
  pm.EndEpoch(tail_epoch);
  EXPECT_TRUE(pm.Lookup(tail_first, 0).has_value());
  EXPECT_LE(pm.memory_bytes(),
            spine_bytes + 64 * 8 + opts.budget_bytes);

  pm.Clear();
  EXPECT_EQ(pm.memory_bytes(), 0u);
  EXPECT_EQ(pm.num_positions(), 0u);
}

TEST(TempMapTest, PrefetchesKnownPositions) {
  PositionalMap pm(8, SmallChunks(4));
  int c = pm.BeginStripeInsert(0, {2, 5});
  for (int t = 0; t < 4; ++t) {
    pm.InsertPosition(c, t, 2, static_cast<uint32_t>(20 + t));
    if (t % 2 == 0) {
      pm.InsertPosition(c, t, 5, static_cast<uint32_t>(50 + t));
    }
  }
  pm.EndStripeInsert();

  TempMap temp(&pm, 0, 4, {2, 5, 6});
  EXPECT_EQ(temp.num_attrs(), 3);
  EXPECT_EQ(temp.Position(1, 0), 21u);
  EXPECT_EQ(temp.Position(0, 1), 50u);
  EXPECT_EQ(temp.Position(1, 1), PositionalMap::kUnknown);  // hole
  EXPECT_EQ(temp.Position(0, 2), PositionalMap::kUnknown);  // unindexed
  EXPECT_EQ(temp.prefilled(), 6);
  temp.SetPosition(1, 1, 99);
  EXPECT_EQ(temp.Position(1, 1), 99u);
}

TEST(TempMapTest, NullMapMeansAllUnknown) {
  TempMap temp(nullptr, 0, 4, {0, 1});
  EXPECT_EQ(temp.prefilled(), 0);
  EXPECT_EQ(temp.Position(3, 1), PositionalMap::kUnknown);
}

// ---------------------------------------------------------------------
// Randomized property: lookups always return what was inserted.
// ---------------------------------------------------------------------

TEST(PositionalMapProperty, RandomInsertLookupConsistency) {
  Rng rng(77);
  PositionalMap pm(16, SmallChunks(32));
  // Model: tuple -> attr -> position.
  std::vector<std::vector<int64_t>> model(320, std::vector<int64_t>(16, -1));
  for (int round = 0; round < 40; ++round) {
    uint64_t stripe = static_cast<uint64_t>(rng.Uniform(0, 9));
    int nattrs = static_cast<int>(rng.Uniform(1, 4));
    std::vector<int> attrs;
    while (static_cast<int>(attrs.size()) < nattrs) {
      int a = static_cast<int>(rng.Uniform(0, 15));
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        attrs.push_back(a);
      }
    }
    int c = pm.BeginStripeInsert(stripe, attrs);
    for (int t = 0; t < 32; ++t) {
      uint64_t tuple = stripe * 32 + t;
      for (int a : attrs) {
        // In reality a (tuple, attr) position is a property of the file and
        // never changes; model that so duplicate insertion via different
        // chunk combinations stays consistent.
        uint32_t pos = static_cast<uint32_t>(tuple * 16 + a);
        pm.InsertPosition(c, tuple, a, pos);
        model[tuple][a] = pos;
      }
    }
    pm.EndStripeInsert();
  }
  // Unlimited budget: every inserted position must be retrievable.
  for (uint64_t tuple = 0; tuple < 320; ++tuple) {
    for (int a = 0; a < 16; ++a) {
      auto got = pm.Lookup(tuple, a);
      if (model[tuple][a] >= 0) {
        ASSERT_TRUE(got.has_value()) << tuple << "/" << a;
        EXPECT_EQ(*got, static_cast<uint32_t>(model[tuple][a]));
      } else {
        EXPECT_FALSE(got.has_value()) << tuple << "/" << a;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Budget eviction under a real query workload
// ---------------------------------------------------------------------

/// With a positional-map budget far smaller than the table's positions, the
/// map must stay under budget after every query while queries keep returning
/// exactly the same results as an unconstrained engine.
TEST(PositionalMapBudget, TightBudgetEngineStaysUnderBudgetAndCorrect) {
  TempDir dir;
  std::string path = dir.File("wide.csv");
  std::string csv;
  for (int r = 0; r < 500; ++r) {
    csv += std::to_string(r);
    for (int c = 1; c < 10; ++c) {
      csv += "," + std::to_string((r * 31 + c * 7) % 100);
    }
    csv += "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, csv).ok());
  Schema schema;
  for (int c = 0; c < 10; ++c) {
    schema.AddColumn({"c" + std::to_string(c), TypeId::kInt64});
  }

  EngineConfig tight = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  tight.pm_budget_bytes = 8 * 1024;  // far below 500 rows x 10 attrs x 4 B
  tight.tuples_per_chunk = 64;
  Database constrained(tight);
  ASSERT_TRUE(constrained.RegisterCsv("t", path, schema).ok());

  auto reference = MakeEngine(SystemUnderTest::kPostgresRawBaseline);
  ASSERT_TRUE(reference->RegisterCsv("t", path, schema).ok());

  const char* kQueries[] = {
      "SELECT c0, c9 FROM t WHERE c5 > 50",
      "SELECT c3, c4, c5 FROM t WHERE c1 < 30",
      "SELECT COUNT(*) AS n, SUM(c7) AS s FROM t WHERE c2 >= 10",
      "SELECT c8, COUNT(*) AS n FROM t GROUP BY c8",
      "SELECT c0 FROM t WHERE c9 = 3",
      "SELECT c6, c2 FROM t WHERE c0 < 250 AND c4 > 20",
  };
  PositionalMap* pm = constrained.runtime("t")->pmap.get();
  ASSERT_NE(pm, nullptr);
  for (int round = 0; round < 3; ++round) {
    for (const char* sql : kQueries) {
      auto got = constrained.Execute(sql);
      ASSERT_TRUE(got.ok()) << sql << "\n" << got.status();
      auto want = reference->Execute(sql);
      ASSERT_TRUE(want.ok()) << sql << "\n" << want.status();
      EXPECT_EQ(got->Canonical(true), want->Canonical(true)) << sql;
      EXPECT_LE(pm->memory_bytes(), tight.pm_budget_bytes)
          << "over budget after: " << sql;
    }
  }
  // The budget forced actual evictions (otherwise this test is vacuous).
  EXPECT_GT(pm->counters().chunks_evicted, 0u);
}

/// Spilled chunks must transparently reload and keep results exact.
TEST(PositionalMapBudget, TightBudgetWithSpillDirStaysCorrect) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  std::string csv;
  for (int r = 0; r < 300; ++r) {
    csv += std::to_string(r) + "," + std::to_string(r % 7) + "," +
           std::to_string(r * 3) + "," + std::to_string(r % 11) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, csv).ok());
  Schema schema{{"a", TypeId::kInt64},
                {"b", TypeId::kInt64},
                {"c", TypeId::kInt64},
                {"d", TypeId::kInt64}};

  EngineConfig cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  cfg.pm_budget_bytes = 4 * 1024;
  cfg.tuples_per_chunk = 32;
  cfg.pm_spill_dir = dir.File("spill");
  ASSERT_TRUE(CreateDir(cfg.pm_spill_dir).ok());
  Database db(cfg);
  ASSERT_TRUE(db.RegisterCsv("t", path, schema).ok());

  auto reference = MakeEngine(SystemUnderTest::kPostgresRawBaseline);
  ASSERT_TRUE(reference->RegisterCsv("t", path, schema).ok());

  const char* kQueries[] = {
      "SELECT a, c FROM t WHERE b = 3",
      "SELECT d, COUNT(*) AS n FROM t GROUP BY d",
      "SELECT a FROM t WHERE c > 600",
      "SELECT b, d FROM t WHERE a < 150",
  };
  PositionalMap* pm = db.runtime("t")->pmap.get();
  for (int round = 0; round < 3; ++round) {
    for (const char* sql : kQueries) {
      auto got = db.Execute(sql);
      ASSERT_TRUE(got.ok()) << sql << "\n" << got.status();
      auto want = reference->Execute(sql);
      ASSERT_TRUE(want.ok()) << sql;
      EXPECT_EQ(got->Canonical(true), want->Canonical(true)) << sql;
      EXPECT_LE(pm->memory_bytes(), cfg.pm_budget_bytes) << sql;
    }
  }
  // The budget forced chunks through the spill path (otherwise this test
  // exercises nothing the in-memory variant doesn't).
  EXPECT_GT(pm->counters().chunks_spilled, 0u);
  EXPECT_GT(pm->counters().chunks_reloaded, 0u);
}

}  // namespace
}  // namespace nodb
