#ifndef NODB_UTIL_RNG_H_
#define NODB_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace nodb {

/// Deterministic 64-bit PRNG (splitmix64) used by data generators and
/// workload drivers. All experiments seed it explicitly so runs reproduce
/// byte-identical datasets across machines, which `std::mt19937` plus
/// distribution objects would not guarantee.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace nodb

#endif  // NODB_UTIL_RNG_H_
