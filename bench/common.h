#ifndef NODB_BENCH_COMMON_H_
#define NODB_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace bench {

/// Command-line knobs shared by all figure benchmarks:
///   --scale=F   multiplies dataset sizes (default 1.0; the paper's sizes
///               correspond to roughly --scale=250 for the micro file)
///   --seed=N    workload seed
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
};

BenchArgs ParseArgs(int argc, char** argv);

/// Prints the figure banner: what the paper reports and what to look for.
void PrintBanner(const std::string& figure, const std::string& paper_claim);

/// Simple aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision number rendering for tables.
std::string Fmt(double v, int decimals = 3);

/// Executes `sql` through the streaming cursor (draining all batches, no
/// result materialization in the timed region) and returns the elapsed
/// seconds; aborts the benchmark process with a message on error (a
/// benchmark must not silently skip).
double RunQuery(Database* db, const std::string& sql);

/// Scratch directory for generated datasets, cleaned at process exit.
TempDir* DataDir();

/// Generates (once per process) a micro-benchmark CSV and returns its path.
std::string MicroCsv(const MicroDataSpec& spec, const std::string& tag);

}  // namespace bench
}  // namespace nodb

#endif  // NODB_BENCH_COMMON_H_
