// Quickstart: query a raw CSV file with SQL — no loading step.
//
// This is the NoDB pitch in thirty lines: point the engine at a file,
// declare the schema, and run SQL. The positional map, cache and statistics
// build themselves as a side effect of your queries, so repeated access
// gets faster without any tuning.
//
//   ./quickstart [path/to/file.csv]
//
// Without an argument, a small demo file is generated.

#include <cstdio>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/stopwatch.h"

using namespace nodb;

int main(int argc, char** argv) {
  TempDir scratch;
  std::string csv = argc > 1 ? argv[1] : scratch.File("inventory.csv");
  if (argc <= 1) {
    Status s = WriteStringToFile(
        csv,
        "1,espresso machine,kitchen,12,450.00,2023-04-01\n"
        "2,desk lamp,office,40,19.99,2023-05-12\n"
        "3,monitor,office,25,189.50,2023-05-20\n"
        "4,kettle,kitchen,18,35.00,2023-06-02\n"
        "5,chair,office,60,89.00,2023-06-15\n"
        "6,grinder,kitchen,9,99.95,2023-07-01\n");
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // A PostgresRaw-style engine: positional map + cache + adaptive stats.
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  Status s = db->RegisterCsv(
      "inventory", csv,
      Schema{{"id", TypeId::kInt64},
             {"name", TypeId::kString},
             {"room", TypeId::kString},
             {"quantity", TypeId::kInt64},
             {"price", TypeId::kDouble},
             {"added", TypeId::kDate}});
  if (!s.ok()) {
    fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The streaming API: Query() returns a cursor, drained batch-by-batch.
  // Rows are consumed as the raw file is scanned — nothing is materialized,
  // so this works unchanged on files far larger than memory.
  const char* queries[] = {
      "SELECT name, quantity FROM inventory WHERE room = 'office' "
      "ORDER BY quantity DESC",
      "SELECT room, COUNT(*) AS items, SUM(quantity * price) AS stock_value "
      "FROM inventory GROUP BY room ORDER BY room",
  };
  for (const char* sql : queries) {
    printf("> %s\n", sql);
    Stopwatch timer;
    auto cursor = db->Query(sql);
    if (!cursor.ok()) {
      fprintf(stderr, "query failed: %s\n", cursor.status().ToString().c_str());
      return 1;
    }
    for (int c = 0; c < cursor->schema().num_columns(); ++c) {
      printf("%s%s", c ? " | " : "", cursor->schema().column(c).name.c_str());
    }
    printf("\n");
    RowBatch batch = cursor->MakeBatch();
    while (true) {
      auto n = cursor->Next(&batch);
      if (!n.ok()) {
        fprintf(stderr, "query failed: %s\n", n.status().ToString().c_str());
        return 1;
      }
      if (*n == 0) break;
      for (size_t r = 0; r < *n; ++r) {
        for (size_t c = 0; c < batch[r].size(); ++c) {
          printf("%s%s", c ? " | " : "", batch[r][c].ToString().c_str());
        }
        printf("\n");
      }
    }
    printf("  (%.1f ms)\n\n", timer.ElapsedSeconds() * 1000);
  }

  // The convenience wrapper: Execute() drains the same cursor into a
  // materialized QueryResult — handy when you want the whole answer at once.
  const char* sql = "SELECT name FROM inventory WHERE added >= "
                    "DATE '2023-06-01'";
  printf("> %s\n", sql);
  auto result = db->Execute(sql);
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("%s  (%.1f ms)\n\n", result->ToString().c_str(),
         result->seconds * 1000);

  // The adaptive structures built themselves during the queries above.
  TableRuntime* rt = db->runtime("inventory");
  printf("adaptive state after 3 queries: positional map %llu positions, "
         "cache %llu bytes\n",
         static_cast<unsigned long long>(rt->pmap->num_positions()),
         static_cast<unsigned long long>(rt->cache->memory_bytes()));
  return 0;
}
