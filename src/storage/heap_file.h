#ifndef NODB_STORAGE_HEAP_FILE_H_
#define NODB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// A file of fixed-size pages with read/write access by page id. This is the
/// raw medium under the slotted-page table heap; the buffer pool sits on top
/// for reads.
class HeapFile {
 public:
  /// Creates a new, empty page file (truncating any existing one).
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path);
  /// Opens an existing page file for reading and appending.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path);

  ~HeapFile();
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a zeroed page and returns its id.
  Result<uint32_t> AllocatePage();

  Status ReadPage(uint32_t page_id, char* frame) const;
  Status WritePage(uint32_t page_id, const char* frame);

  /// Flushes file contents to stable storage (loads pay durability, as a
  /// DBMS bulk load does via WAL + checkpoint).
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }
  /// Bytes read through ReadPage since construction (I/O accounting).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  HeapFile(int fd, uint32_t page_count, std::string path)
      : fd_(fd), page_count_(page_count), path_(std::move(path)) {}

  int fd_;
  uint32_t page_count_;
  std::string path_;
  mutable uint64_t bytes_read_ = 0;
};

}  // namespace nodb

#endif  // NODB_STORAGE_HEAP_FILE_H_
