// Figure 8 — per-query response time as (a) selectivity falls from 100% to
// 1% and (b) projectivity falls from 100% to 10%, comparing PostgresRaw
// PM+C with the loaded systems (load cost excluded; loaded buffer caches
// dropped before each query, as the paper keeps them cold).
//
// Paper shape: the first query is ~2.3x slower on PostgresRaw than
// PostgreSQL; afterwards PostgresRaw outperforms it, and the gap widens as
// selectivity/projectivity drop (selective parsing pays off).

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

void RunSweep(const char* title, const std::vector<double>& selectivities,
              const std::vector<double>& projectivities,
              const MicroDataSpec& spec, const std::string& csv,
              const Schema& schema) {
  printf("\n-- %s --\n", title);
  struct SystemRun {
    std::string name;
    SystemUnderTest sut;
    bool loads;
  };
  const SystemRun kSystems[] = {
      {"PostgresRaw PM+C", SystemUnderTest::kPostgresRawPMC, false},
      {"PostgreSQL", SystemUnderTest::kPostgreSQL, true},
      {"DBMS X", SystemUnderTest::kDbmsX, true},
      {"MySQL", SystemUnderTest::kMySQL, true},
  };

  std::vector<std::unique_ptr<Database>> dbs;
  for (const SystemRun& sys : kSystems) {
    auto db = MakeEngine(sys.sut);
    if (sys.loads) {
      auto load = db->LoadCsv("wide", csv, schema);
      if (!load.ok()) exit(1);
    } else {
      if (!db->RegisterCsv("wide", csv, schema).ok()) exit(1);
    }
    dbs.push_back(std::move(db));
  }

  TextTable table({"query", "sel(%)", "proj(%)", "PostgresRaw(s)",
                   "PostgreSQL(s)", "DBMS X(s)", "MySQL(s)"});
  for (size_t q = 0; q < selectivities.size(); ++q) {
    std::string sql = SelectivityQuery("wide", spec, selectivities[q],
                                       projectivities[q]);
    std::vector<std::string> row = {
        "Q" + std::to_string(q + 1),
        Fmt(100 * selectivities[q], 0),
        Fmt(100 * projectivities[q], 0)};
    for (size_t s = 0; s < dbs.size(); ++s) {
      if (kSystems[s].loads) dbs[s]->DropBufferCaches();  // cold, per paper
      row.push_back(Fmt(RunQuery(dbs[s].get(), sql)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 8: response time vs selectivity (a) and projectivity (b)",
      "PostgresRaw ~2.3x slower only on the very first query; faster "
      "afterwards, increasingly so at low selectivity/projectivity.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(20000 * args.scale);
  spec.cols = 150;  // the paper uses 150 attributes
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig08");
  Schema schema = MicroSchema(spec);

  RunSweep("(a) selectivity 100% -> 1%, projectivity fixed at 100%",
           {1.00, 1.00, 0.80, 0.60, 0.40, 0.20, 0.01},
           {1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00}, spec, csv, schema);
  RunSweep("(b) projectivity 100% -> 10%, selectivity fixed at 100%",
           {1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00},
           {1.00, 1.00, 0.80, 0.60, 0.50, 0.40, 0.20, 0.10}, spec, csv,
           schema);
  return 0;
}
