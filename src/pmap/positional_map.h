#ifndef NODB_PMAP_POSITIONAL_MAP_H_
#define NODB_PMAP_POSITIONAL_MAP_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// Adaptive positional map (the paper's §4.2, the core NoDB data structure).
///
/// The map stores, for a single raw file, byte positions of attribute values
/// so that later queries jump (close) to the data instead of re-tokenizing.
/// Physical organization follows the paper:
///
///  * **Horizontal partitioning**: tuples are divided into fixed stripes of
///    `tuples_per_chunk` rows.
///  * **Vertical partitioning**: within a stripe, positions are grouped into
///    chunks holding the *combination* of attributes a query accessed
///    together ("the positional map does not mirror the raw file; it adapts
///    to the workload, keeping in the same chunk attributes accessed
///    together"). Attribute order inside a chunk is insertion order, not
///    file order; a per-attribute membership table (the paper's "higher
///    level plain array") locates an attribute's chunk and column.
///  * **Relative positions**: a per-stripe spine stores each tuple's row
///    start as an absolute 64-bit offset (this doubles as the "minimal map
///    maintaining positional information only for the end of lines" used by
///    the cache-only variant); attribute positions are 32-bit offsets
///    relative to the row start.
///  * **Budget + LRU + spill**: total footprint is capped by
///    `budget_bytes`; least-recently-used chunks are dropped, or serialized
///    to `spill_dir` and transparently reloaded on the next access.
///
/// The map is an auxiliary structure: dropping any part of it only costs
/// future re-tokenization, never correctness.
class PositionalMap {
 public:
  struct Options {
    /// Tuples per horizontal stripe.
    int tuples_per_chunk = 4096;
    /// Storage threshold for positions + spine; UINT64_MAX = unlimited.
    uint64_t budget_bytes = UINT64_MAX;
    /// If non-empty, evicted chunks spill here instead of being dropped.
    std::string spill_dir;
  };

  /// A resolved anchor near a requested attribute: the indexed attribute and
  /// its offset relative to the row start.
  struct Anchor {
    int attr = 0;
    uint32_t rel_offset = 0;
  };

  /// Counters for tests and benchmarks.
  struct Counters {
    uint64_t lookups = 0;
    uint64_t exact_hits = 0;
    uint64_t anchor_hits = 0;
    uint64_t chunks_evicted = 0;
    uint64_t chunks_spilled = 0;
    uint64_t chunks_reloaded = 0;
  };

  /// Sentinel for "position unknown" inside a chunk.
  static constexpr uint32_t kUnknown = UINT32_MAX;

  PositionalMap(int num_attrs, Options options);

  PositionalMap(const PositionalMap&) = delete;
  PositionalMap& operator=(const PositionalMap&) = delete;

  // ------------------------------------------------------------------
  // Row starts (spine / end-of-line map)
  // ------------------------------------------------------------------

  /// Records that tuple `tuple` begins at absolute file offset `offset`.
  void SetRowStart(uint64_t tuple, uint64_t offset);

  /// Absolute offset of the tuple's first byte, if known.
  std::optional<uint64_t> RowStart(uint64_t tuple) const;

  /// Number of contiguous tuples from 0 whose row start is known. Once a
  /// full sequential scan completed this equals the table's row count.
  uint64_t contiguous_rows_known() const { return contiguous_rows_known_; }

  /// Marks the total number of tuples in the file (set when a scan reaches
  /// EOF); 0 if not yet known.
  void SetTotalTuples(uint64_t n) { total_tuples_ = n; }
  uint64_t total_tuples() const { return total_tuples_; }

  // ------------------------------------------------------------------
  // Attribute positions
  // ------------------------------------------------------------------

  /// Declares that the caller is about to insert positions of `attrs` for
  /// the stripe containing `tuple`; creates (or reuses) the chunk for this
  /// attribute combination. Returns an opaque chunk id to pass to
  /// InsertBatchValue, or -1 if all attrs are already indexed for this
  /// stripe (nothing to insert).
  int BeginStripeInsert(uint64_t stripe, const std::vector<int>& attrs);

  /// Stores the position of `attr` for `tuple` into the chunk returned by
  /// BeginStripeInsert. `rel_offset` is relative to the tuple's row start.
  void InsertPosition(int chunk_id, uint64_t tuple, int attr,
                      uint32_t rel_offset);

  /// Finishes a stripe insertion: applies budget enforcement.
  void EndStripeInsert();

  /// Zero-lookup bulk writer over one stripe — the hot path the in-situ
  /// scan uses to record every position discovered while tokenizing
  /// ("PostgresRaw learns as much information as possible during each
  /// query", §4.2). Internally the attribute set is split into small
  /// sub-chunks so each chunk "fits comfortably in the CPU caches" and the
  /// LRU can evict at useful granularity. Valid until EndStripeInsert.
  class BulkInserter {
   public:
    /// True if at least one attribute was admitted for insertion.
    bool valid() const { return !targets_.empty() && any_admitted_; }

    /// Records the position of the i-th attribute (in the attrs order given
    /// to BeginBulkInsert) for row `r` of the stripe. kUnknown is a no-op;
    /// attributes whose chunk was declined under budget pressure are
    /// silently skipped.
    void Set(int r, int i, uint32_t pos) {
      if (pos == kUnknown) return;
      const Target& t = targets_[i];
      if (t.data == nullptr) return;  // admission declined
      uint32_t& cell = t.data[static_cast<size_t>(r) * t.group_size + t.col];
      if (cell == kUnknown) ++*num_positions_;
      cell = pos;
    }

   private:
    friend class PositionalMap;
    struct Target {
      uint32_t* data = nullptr;
      size_t group_size = 0;
      int col = 0;
    };
    std::vector<Target> targets_;  // one per attr
    bool any_admitted_ = false;
    uint64_t* num_positions_ = nullptr;
  };

  /// Maximum attributes stored together in one sub-chunk (4 x 4096 x 4 B =
  /// 64 KiB, comfortably cache-resident per the paper's storage format).
  static constexpr int kMaxGroupAttrs = 4;

  /// BeginStripeInsert + per-attribute column resolution in one step,
  /// splitting `attrs` into cache-sized sub-chunks. Returns an invalid
  /// inserter when `attrs` is empty or nothing was admitted.
  BulkInserter BeginBulkInsert(uint64_t stripe, const std::vector<int>& attrs);

  /// Marks the start of a new insertion epoch (one per scan). Under budget
  /// pressure the map refuses to evict chunks inserted during the *current*
  /// epoch to make room for more current-epoch insertions — otherwise a
  /// sequential scan bigger than the budget would evict its own fresh
  /// entries and retain nothing (classic LRU scan thrash). Chunks from
  /// earlier epochs remain evictable, so the map still adapts across
  /// queries.
  void BeginEpoch() { ++epoch_; }

  /// Exact position of (tuple, attr) relative to its row start, if indexed.
  std::optional<uint32_t> Lookup(uint64_t tuple, int attr);

  /// Nearest indexed attribute at or below `attr` for this tuple
  /// (for forward incremental tokenizing). Includes `attr` itself.
  std::optional<Anchor> AnchorAtOrBelow(uint64_t tuple, int attr);

  /// Nearest indexed attribute strictly above `attr` for this tuple
  /// (for backward incremental tokenizing).
  std::optional<Anchor> AnchorAbove(uint64_t tuple, int attr);

  /// True if every tuple of `stripe` currently has an in-memory (or
  /// spilled) position for `attr`.
  bool StripeHasAttr(uint64_t stripe, int attr);

  /// Copies the known positions of `attr` for `n` tuples of `stripe` into
  /// `out[0..n)`; cells without a position are set to kUnknown. Returns the
  /// number of known positions copied. This is the bulk accessor behind the
  /// temporary map: one chunk fetch serves a whole stripe.
  int FillStripePositions(uint64_t stripe, int attr, uint32_t* out, int n);

  /// Attributes that have (possibly partial) positional data for `stripe`,
  /// ascending. Used to pick incremental-tokenizing anchors.
  std::vector<int> IndexedAttrsForStripe(uint64_t stripe);

  /// True if a single chunk of `stripe` covers every attribute in `attrs`.
  /// Drives the paper's combination policy: "if all requested attributes for
  /// a query belong in different chunks, then the new combination is
  /// indexed" (§4.2, Adaptive Behavior).
  bool StripeAttrsShareChunk(uint64_t stripe, const std::vector<int>& attrs);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  int num_attrs() const { return num_attrs_; }
  int tuples_per_chunk() const { return options_.tuples_per_chunk; }
  uint64_t stripe_of(uint64_t tuple) const {
    return tuple / options_.tuples_per_chunk;
  }
  /// Current in-memory footprint in bytes (chunks + spine).
  uint64_t memory_bytes() const { return memory_bytes_; }
  /// Number of attribute positions currently resident in memory.
  uint64_t num_positions() const { return num_positions_; }
  const Counters& counters() const { return counters_; }
  const Options& options() const { return options_; }

  /// Drops the entire map (it is auxiliary; next query rebuilds it).
  void Clear();

 private:
  /// A vertical chunk: positions of one attribute combination over one
  /// stripe, stored row-major [tuple_in_stripe][attr_idx_in_group].
  struct Chunk {
    int group_id = 0;
    uint64_t epoch = 0;          // insertion epoch (see BeginEpoch)
    std::vector<uint32_t> data;  // tuples_per_chunk * group_size entries
    bool spilled = false;        // true if currently only on disk
    std::list<std::pair<uint64_t, int>>::iterator lru_pos;  // key in lru_
    uint64_t bytes() const { return data.size() * sizeof(uint32_t); }
  };

  /// Attribute combination registry entry (never evicted; tiny).
  struct Group {
    std::vector<int> attrs;  // insertion order
  };

  struct Stripe {
    /// group_id -> chunk for this stripe.
    std::unordered_map<int, std::unique_ptr<Chunk>> chunks;
    /// Absolute row starts for tuples in this stripe; may be shorter than
    /// tuples_per_chunk while being discovered.
    std::vector<uint64_t> row_starts;
    uint64_t spine_bytes() const {
      return row_starts.capacity() * sizeof(uint64_t);
    }
  };

  Stripe& GetStripe(uint64_t stripe);
  /// Group id for exactly this ordered attr set, creating it if new.
  int InternGroup(const std::vector<int>& attrs);
  /// True if a new chunk of `bytes` can be admitted without evicting a
  /// current-epoch chunk.
  bool CanAdmit(uint64_t bytes);
  /// Index of `attr` within group `gid`, or -1.
  int ColumnInGroup(int gid, int attr) const;
  /// Returns the chunk for (stripe, gid), reloading it from spill if needed;
  /// nullptr if absent. Touches LRU.
  Chunk* FetchChunk(uint64_t stripe, int gid);
  void TouchLru(uint64_t stripe, Chunk* chunk);
  void EnforceBudget();
  void EvictOne();
  std::string SpillPath(uint64_t stripe, int gid) const;
  Status SpillChunk(uint64_t stripe, Chunk* chunk);
  Status ReloadChunk(uint64_t stripe, Chunk* chunk);

  int num_attrs_;
  Options options_;

  std::vector<Group> groups_;
  /// Key: sorted attr list serialized -> group id (to reuse combinations).
  std::unordered_map<std::string, int> group_index_;
  /// attr -> list of (group_id, column index) containing it.
  std::vector<std::vector<std::pair<int, int>>> attr_membership_;

  std::unordered_map<uint64_t, Stripe> stripes_;
  /// LRU of (stripe, group_id), most-recent at front.
  std::list<std::pair<uint64_t, int>> lru_;

  uint64_t memory_bytes_ = 0;
  uint64_t num_positions_ = 0;
  uint64_t epoch_ = 0;
  uint64_t contiguous_rows_known_ = 0;
  uint64_t total_tuples_ = 0;
  int open_insert_chunks_ = 0;
  Counters counters_;
};

}  // namespace nodb

#endif  // NODB_PMAP_POSITIONAL_MAP_H_
