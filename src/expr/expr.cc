#include "expr/expr.h"

namespace nodb {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string ComparisonExpr::ToString() const {
  return "(" + left->ToString() + " " + std::string(CompareOpToString(op)) +
         " " + right->ToString() + ")";
}

std::string LogicalExpr::ToString() const {
  if (op == LogicalOp::kNot) return "(NOT " + left->ToString() + ")";
  return "(" + left->ToString() +
         (op == LogicalOp::kAnd ? " AND " : " OR ") + right->ToString() + ")";
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left->ToString() + " " + std::string(ArithOpToString(op)) +
         " " + right->ToString() + ")";
}

std::string InListExpr::ToString() const {
  std::string out = input->ToString();
  out += negated ? " NOT IN (" : " IN (";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += ")";
  return out;
}

std::string LikeExpr::ToString() const {
  return input->ToString() + (negated ? " NOT LIKE '" : " LIKE '") + pattern +
         "'";
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const WhenClause& w : whens) {
    out += " WHEN " + w.condition->ToString() + " THEN " +
           w.result->ToString();
  }
  if (else_result != nullptr) out += " ELSE " + else_result->ToString();
  out += " END";
  return out;
}

std::string IsNullExpr::ToString() const {
  return input->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
}

std::string CastExpr::ToString() const {
  return "CAST(" + input->ToString() + " AS " +
         std::string(TypeIdToString(type)) + ")";
}

std::string AggregateRefExpr::ToString() const {
  return "agg#" + std::to_string(agg_index);
}

}  // namespace nodb
