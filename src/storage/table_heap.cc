#include "storage/table_heap.h"

#include <algorithm>
#include <cstring>

namespace nodb {

namespace {

constexpr uint32_t kMetaMagic = 0x4E44420A;  // "NDB\n"

struct MetaPage {
  uint32_t magic;
  uint32_t tuple_header_bytes;
  uint64_t row_count;
};

/// Overflow page layout: [next_page u32][data_len u32][payload...].
constexpr uint32_t kOverflowHeader = 8;
constexpr uint32_t kOverflowCapacity = kPageSize - kOverflowHeader;

void EncodeFixed32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

TableHeap::TableHeap(std::unique_ptr<HeapFile> file, Schema schema,
                     Options options)
    : file_(std::move(file)), schema_(std::move(schema)), options_(options) {
  pool_ = std::make_unique<BufferPool>(file_.get(), options_.buffer_pool_pages);
}

Result<std::unique_ptr<TableHeap>> TableHeap::Create(const std::string& path,
                                                     Schema schema,
                                                     Options options) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file, HeapFile::Create(path));
  NODB_ASSIGN_OR_RETURN(uint32_t meta_id, file->AllocatePage());
  (void)meta_id;  // page 0 reserved for metadata
  return std::unique_ptr<TableHeap>(
      new TableHeap(std::move(file), std::move(schema), options));
}

Result<std::unique_ptr<TableHeap>> TableHeap::Open(const std::string& path,
                                                   Schema schema,
                                                   Options options) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file, HeapFile::Open(path));
  if (file->page_count() == 0) {
    return Status::Corruption("table heap missing metadata page: " + path);
  }
  std::vector<char> frame(kPageSize);
  NODB_RETURN_IF_ERROR(file->ReadPage(0, frame.data()));
  MetaPage meta;
  memcpy(&meta, frame.data(), sizeof(meta));
  if (meta.magic != kMetaMagic) {
    return Status::Corruption("bad table heap magic: " + path);
  }
  options.tuple_header_bytes = meta.tuple_header_bytes;
  auto heap = std::unique_ptr<TableHeap>(
      new TableHeap(std::move(file), std::move(schema), options));
  heap->row_count_ = meta.row_count;
  return heap;
}

void TableHeap::SerializeRow(const Row& row, std::string* out) const {
  out->clear();
  // Tuple header: opaque bookkeeping bytes (transaction ids, infomask, ...);
  // zero-filled but always read/written, so its cost is real.
  out->append(options_.tuple_header_bytes, '\0');
  // Null bitmap.
  size_t bitmap_pos = out->size();
  size_t bitmap_bytes = (row.size() + 7) / 8;
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      (*out)[bitmap_pos + i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  // Fields.
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    switch (schema_.column(static_cast<int>(i)).type) {
      case TypeId::kInt64: {
        int64_t x = v.int64();
        out->append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDouble: {
        double x = v.f64();
        out->append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDate: {
        int32_t x = v.date();
        out->append(reinterpret_cast<const char*>(&x), 4);
        break;
      }
      case TypeId::kBool: {
        char x = v.boolean() ? 1 : 0;
        out->push_back(x);
        break;
      }
      case TypeId::kString: {
        EncodeFixed32(out, static_cast<uint32_t>(v.str().size()));
        out->append(v.str());
        break;
      }
    }
  }
}

Status TableHeap::DeserializeRow(std::string_view tuple,
                                 const std::vector<bool>& needed,
                                 Row* row) const {
  int ncols = schema_.num_columns();
  row->assign(ncols, Value());
  size_t pos = options_.tuple_header_bytes;
  size_t bitmap_bytes = (static_cast<size_t>(ncols) + 7) / 8;
  if (tuple.size() < pos + bitmap_bytes) {
    return Status::Corruption("tuple shorter than header+bitmap");
  }
  const char* bitmap = tuple.data() + pos;
  pos += bitmap_bytes;
  for (int i = 0; i < ncols; ++i) {
    bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    TypeId type = schema_.column(i).type;
    if (is_null) {
      (*row)[i] = Value::Null(type);
      continue;
    }
    switch (type) {
      case TypeId::kInt64: {
        if (pos + 8 > tuple.size()) return Status::Corruption("short tuple");
        if (needed[i]) {
          int64_t x;
          memcpy(&x, tuple.data() + pos, 8);
          (*row)[i] = Value::Int64(x);
        }
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > tuple.size()) return Status::Corruption("short tuple");
        if (needed[i]) {
          double x;
          memcpy(&x, tuple.data() + pos, 8);
          (*row)[i] = Value::Double(x);
        }
        pos += 8;
        break;
      }
      case TypeId::kDate: {
        if (pos + 4 > tuple.size()) return Status::Corruption("short tuple");
        if (needed[i]) {
          int32_t x;
          memcpy(&x, tuple.data() + pos, 4);
          (*row)[i] = Value::Date(x);
        }
        pos += 4;
        break;
      }
      case TypeId::kBool: {
        if (pos + 1 > tuple.size()) return Status::Corruption("short tuple");
        if (needed[i]) (*row)[i] = Value::Bool(tuple[pos] != 0);
        pos += 1;
        break;
      }
      case TypeId::kString: {
        if (pos + 4 > tuple.size()) return Status::Corruption("short tuple");
        uint32_t len = DecodeFixed32(tuple.data() + pos);
        pos += 4;
        if (pos + len > tuple.size()) return Status::Corruption("short tuple");
        if (needed[i]) {
          (*row)[i] = Value::String(std::string_view(tuple.data() + pos, len));
        }
        pos += len;
        break;
      }
    }
  }
  return Status::OK();
}

Status TableHeap::FlushCurrentPage() {
  if (current_page_id_ == 0) return Status::OK();
  NODB_RETURN_IF_ERROR(
      file_->WritePage(current_page_id_, current_frame_.data()));
  current_page_id_ = 0;
  return Status::OK();
}

Status TableHeap::AppendOverflow(std::string_view payload,
                                 uint32_t* first_page) {
  // Chain of overflow pages, each [next u32][len u32][bytes].
  uint32_t prev_page = 0;
  std::vector<char> frame(kPageSize);
  std::vector<char> prev_frame;
  size_t off = 0;
  *first_page = 0;
  while (off < payload.size()) {
    NODB_ASSIGN_OR_RETURN(uint32_t page_id, file_->AllocatePage());
    if (*first_page == 0) *first_page = page_id;
    if (prev_page != 0) {
      // Patch the previous page's `next` pointer and flush it.
      memcpy(prev_frame.data(), &page_id, 4);
      NODB_RETURN_IF_ERROR(file_->WritePage(prev_page, prev_frame.data()));
    }
    uint32_t chunk = static_cast<uint32_t>(
        std::min<size_t>(kOverflowCapacity, payload.size() - off));
    memset(frame.data(), 0, kPageSize);
    uint32_t next = 0;
    memcpy(frame.data(), &next, 4);
    memcpy(frame.data() + 4, &chunk, 4);
    memcpy(frame.data() + kOverflowHeader, payload.data() + off, chunk);
    off += chunk;
    prev_page = page_id;
    prev_frame = frame;
  }
  if (prev_page != 0) {
    NODB_RETURN_IF_ERROR(file_->WritePage(prev_page, prev_frame.data()));
  }
  return Status::OK();
}

Status TableHeap::Append(const Row& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  SerializeRow(row, &serialize_scratch_);
  std::string_view payload = serialize_scratch_;

  if (payload.size() > SlottedPage::MaxInlinePayload()) {
    // Wide tuple: spill the payload to an overflow chain and store a
    // pointer record in the slot.
    uint32_t first_page = 0;
    NODB_RETURN_IF_ERROR(AppendOverflow(payload, &first_page));
    SlottedPage::OverflowRef ref{first_page,
                                 static_cast<uint32_t>(payload.size())};
    std::string_view ref_bytes(reinterpret_cast<const char*>(&ref),
                               sizeof(ref));
    if (current_page_id_ == 0) {
      NODB_ASSIGN_OR_RETURN(current_page_id_, file_->AllocatePage());
      current_frame_.assign(kPageSize, 0);
      SlottedPage(current_frame_.data()).Init(current_page_id_);
    }
    SlottedPage page(current_frame_.data());
    if (page.InsertTuple(ref_bytes, SlottedPage::kOverflowPointer) < 0) {
      NODB_RETURN_IF_ERROR(FlushCurrentPage());
      NODB_ASSIGN_OR_RETURN(current_page_id_, file_->AllocatePage());
      current_frame_.assign(kPageSize, 0);
      SlottedPage fresh(current_frame_.data());
      fresh.Init(current_page_id_);
      fresh.InsertTuple(ref_bytes, SlottedPage::kOverflowPointer);
    }
    ++row_count_;
    return Status::OK();
  }

  if (current_page_id_ == 0) {
    NODB_ASSIGN_OR_RETURN(current_page_id_, file_->AllocatePage());
    current_frame_.assign(kPageSize, 0);
    SlottedPage(current_frame_.data()).Init(current_page_id_);
  }
  SlottedPage page(current_frame_.data());
  if (page.InsertTuple(payload) < 0) {
    NODB_RETURN_IF_ERROR(FlushCurrentPage());
    NODB_ASSIGN_OR_RETURN(current_page_id_, file_->AllocatePage());
    current_frame_.assign(kPageSize, 0);
    SlottedPage fresh(current_frame_.data());
    fresh.Init(current_page_id_);
    if (fresh.InsertTuple(payload) < 0) {
      return Status::Internal("tuple does not fit in a fresh page");
    }
  }
  ++row_count_;
  return Status::OK();
}

Status TableHeap::FinishLoad() {
  NODB_RETURN_IF_ERROR(FlushCurrentPage());
  std::vector<char> frame(kPageSize, 0);
  MetaPage meta{kMetaMagic, options_.tuple_header_bytes, row_count_};
  memcpy(frame.data(), &meta, sizeof(meta));
  NODB_RETURN_IF_ERROR(file_->WritePage(0, frame.data()));
  return file_->Sync();
}

void TableHeap::DropCaches() { pool_->Clear(); }

Result<std::string_view> TableHeap::ReadTuple(uint32_t page_id, int slot,
                                              std::string* scratch) const {
  NODB_ASSIGN_OR_RETURN(const char* frame, pool_->Fetch(page_id));
  SlottedPage page(const_cast<char*>(frame));
  std::string_view payload = page.GetTuple(slot);
  if (page.GetFlags(slot) != SlottedPage::kOverflowPointer) {
    return payload;
  }
  // Follow the overflow chain and reassemble.
  SlottedPage::OverflowRef ref;
  memcpy(&ref, payload.data(), sizeof(ref));
  scratch->clear();
  scratch->reserve(ref.total_len);
  uint32_t next = ref.first_page;
  while (next != 0 && scratch->size() < ref.total_len) {
    NODB_ASSIGN_OR_RETURN(const char* of, pool_->Fetch(next));
    uint32_t next_page, len;
    memcpy(&next_page, of, 4);
    memcpy(&len, of + 4, 4);
    scratch->append(of + kOverflowHeader, len);
    next = next_page;
  }
  if (scratch->size() != ref.total_len) {
    return Status::Corruption("broken overflow chain");
  }
  return std::string_view(*scratch);
}

TableHeap::Scanner::Scanner(TableHeap* heap, std::vector<bool> needed)
    : heap_(heap), needed_(std::move(needed)) {}

Result<bool> TableHeap::Scanner::Next(Row* row) {
  while (page_id_ < heap_->file_->page_count()) {
    NODB_ASSIGN_OR_RETURN(const char* frame, heap_->pool_->Fetch(page_id_));
    SlottedPage page(const_cast<char*>(frame));
    // Skip overflow pages (they are only reachable via pointer records);
    // they are distinguishable because data pages carry their own id.
    if (page.page_id() != page_id_) {
      ++page_id_;
      slot_ = 0;
      continue;
    }
    if (slot_ >= page.slot_count()) {
      ++page_id_;
      slot_ = 0;
      continue;
    }
    int slot = slot_++;
    NODB_ASSIGN_OR_RETURN(std::string_view payload,
                          heap_->ReadTuple(page_id_, slot, &scratch_));
    if (heap_->options_.extra_copy_on_scan) {
      // MySQL-style handler copy-out: one extra materialization per row.
      copy_buffer_.assign(payload.data(), payload.size());
      payload = copy_buffer_;
    }
    NODB_RETURN_IF_ERROR(heap_->DeserializeRow(payload, needed_, row));
    return true;
  }
  return false;
}

}  // namespace nodb
