#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "csv/writer.h"
#include "engine/engines.h"
#include "fits/fits_writer.h"
#include "io/inflate_file.h"
#include "json/jsonl_writer.h"
#include "raw/adapter_registry.h"
#include "util/fs_util.h"

namespace nodb {
namespace {

/// Adapter conformance suite: one parameterized fixture, run against every
/// built-in raw format (CSV, FITS, JSON Lines). The engine promises that
/// whatever plugs into the RawSourceAdapter API behaves identically through
/// the shared scan path: empty sources yield empty results, structural
/// shortfalls (short rows, missing keys) read as NULLs, conversion failures
/// surface as clean statuses, container corruption is detected, and closing
/// a cursor early stops the raw-file reads. A new adapter earns its place by
/// adding a Backend entry here.

Schema TestSchema() {
  return Schema{{"id", TypeId::kInt64},
                {"name", TypeId::kString},
                {"score", TypeId::kDouble},
                {"day", TypeId::kDate}};
}

Row TestRow(int i) {
  return {Value::Int64(i), Value::String("src" + std::to_string(i % 7)),
          Value::Double(i * 0.25), Value::Date(8000 + i % 50)};
}

void WriteCsvRows(const std::string& path, int n) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  CsvWriter writer(out->get(), CsvDialect{});
  for (int i = 0; i < n; ++i) ASSERT_TRUE(writer.WriteRow(TestRow(i)).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

void WriteJsonlRows(const std::string& path, int n) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  Schema schema = TestSchema();
  JsonlWriter writer(out->get(), &schema);
  for (int i = 0; i < n; ++i) ASSERT_TRUE(writer.WriteRow(TestRow(i)).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

void WriteFitsRows(const std::string& path, int n) {
  auto writer = FitsWriter::Create(path, TestSchema(), {8});
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 0; i < n; ++i) ASSERT_TRUE((*writer)->Append(TestRow(i)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
}

void AppendRaw(const std::string& path, const std::string& tail) {
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(path, *content + tail).ok());
}

void TruncateFileTo(const std::string& path, size_t bytes) {
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(path, content->substr(0, bytes)).ok());
}

struct Backend {
  const char* label;      // unique test-suffix (formats appear twice: ± gzip)
  const char* format;     // registry / adapter format name
  const char* extension;  // chosen so sniffing must detect the format
  bool needs_schema;      // schema passed via OpenOptions (CSV; empty JSONL)
  bool compressed;        // source served through the gzip inflate layer
  void (*write)(const std::string& path, int n);
  /// Appends one record cut off mid-way (text formats) or cuts the data
  /// section mid-row (FITS).
  std::function<void(const std::string& path, int full_rows)> make_truncated;
  /// Status a full-projection query over the truncated file must return;
  /// kOk means the format cannot tell truncation from a short record and
  /// NULL-fills instead (CSV).
  StatusCode truncated_code;
  /// Appends one structurally ragged record (missing trailing fields /
  /// missing keys); null when the format cannot express one (fixed width).
  std::function<void(const std::string& path)> make_ragged;
  /// Appends one record whose `id` field holds unconvertible text; null
  /// when the format cannot express one (binary values).
  std::function<void(const std::string& path)> make_malformed;
};

const Backend kCsvBackend{
    "csv",
    "csv",
    ".csv",
    /*needs_schema=*/true,
    /*compressed=*/false,
    &WriteCsvRows,
    [](const std::string& path, int full_rows) {
      AppendRaw(path, std::to_string(full_rows) + ",src");  // cut, no newline
    },
    StatusCode::kOk,
    [](const std::string& path) { AppendRaw(path, "900,ragged\n"); },
    [](const std::string& path) { AppendRaw(path, "xx,bad,1.5,2021-01-01\n"); },
};

const Backend kJsonlBackend{
    "jsonl",
    "jsonl",
    ".jsonl",
    /*needs_schema=*/false,
    /*compressed=*/false,
    &WriteJsonlRows,
    [](const std::string& path, int full_rows) {
      AppendRaw(path, "{\"id\":" + std::to_string(full_rows) +
                          ",\"name\":\"tru");  // string never closes
    },
    StatusCode::kInvalidArgument,
    [](const std::string& path) {
      AppendRaw(path, "{\"id\":900,\"name\":\"ragged\"}\n");  // keys missing
    },
    [](const std::string& path) {
      AppendRaw(path,
                "{\"id\":xx,\"name\":\"bad\",\"score\":1.5,"
                "\"day\":\"2021-01-01\"}\n");
    },
};

const Backend kFitsBackend{
    "fits",
    "fits",
    ".fits",
    /*needs_schema=*/false,
    /*compressed=*/false,
    &WriteFitsRows,
    [](const std::string& path, int full_rows) {
      // The header keeps promising `full_rows + 1` rows, but the data
      // section ends mid-row (block padding is cut away too).
      auto file = RandomAccessFile::Open(path);
      ASSERT_TRUE(file.ok());
      auto info = ParseFitsHeader(file->get());
      ASSERT_TRUE(info.ok()) << info.status();
      ASSERT_GE(info->num_rows, static_cast<uint64_t>(full_rows));
      TruncateFileTo(path, info->data_start +
                               (full_rows - 2) * info->row_bytes +
                               info->row_bytes / 2);
    },
    StatusCode::kCorruption,
    nullptr,
    nullptr,
};

// ---------------------------------------------------------------------
// Gzip-wrapped variants: the same text backends served through the
// decompression layer (io/inflate_file). Every contract above must hold
// unchanged — the adapters address *decompressed* offsets and never learn
// the source was compressed. Payload mutations (truncation, ragged and
// malformed records) happen on the decompressed text and the result is
// re-gzipped: corruption of the gzip container itself is inflate_test's
// territory.
// ---------------------------------------------------------------------

void GzipFileInPlace(const std::string& path) {
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(path, GzipCompress(*content)).ok());
}

/// Decompresses `path`, applies `mutate` to the plain text (via a sibling
/// temp file so the text-backend mutators run verbatim), re-compresses.
void MutateGzPayload(const std::string& path,
                     const std::function<void(const std::string&)>& mutate) {
  auto inner = RandomAccessFile::Open(path);
  ASSERT_TRUE(inner.ok());
  auto gz = InflateFile::Open(std::move(*inner), InflateOptions{});
  ASSERT_TRUE(gz.ok()) << gz.status();
  std::string text((*gz)->size(), '\0');
  if (!text.empty()) {
    auto n = (*gz)->Read(0, text.size(), text.data());
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_EQ(*n, text.size());
  }
  const std::string plain = path + ".plain";
  ASSERT_TRUE(WriteStringToFile(plain, text).ok());
  mutate(plain);
  auto mutated = ReadFileToString(plain);
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(WriteStringToFile(path, GzipCompress(*mutated)).ok());
  RemoveFileIfExists(plain);
}

const Backend kGzCsvBackend{
    "csv_gz",
    "csv",
    ".csv.gz",
    /*needs_schema=*/true,
    /*compressed=*/true,
    [](const std::string& path, int n) {
      WriteCsvRows(path, n);
      GzipFileInPlace(path);
    },
    [](const std::string& path, int full_rows) {
      MutateGzPayload(path, [full_rows](const std::string& p) {
        AppendRaw(p, std::to_string(full_rows) + ",src");
      });
    },
    StatusCode::kOk,
    [](const std::string& path) {
      MutateGzPayload(path,
                      [](const std::string& p) { AppendRaw(p, "900,ragged\n"); });
    },
    [](const std::string& path) {
      MutateGzPayload(path, [](const std::string& p) {
        AppendRaw(p, "xx,bad,1.5,2021-01-01\n");
      });
    },
};

const Backend kGzJsonlBackend{
    "jsonl_gz",
    "jsonl",
    ".jsonl.gz",
    /*needs_schema=*/false,
    /*compressed=*/true,
    [](const std::string& path, int n) {
      WriteJsonlRows(path, n);
      GzipFileInPlace(path);
    },
    [](const std::string& path, int full_rows) {
      MutateGzPayload(path, [full_rows](const std::string& p) {
        AppendRaw(p, "{\"id\":" + std::to_string(full_rows) +
                         ",\"name\":\"tru");
      });
    },
    StatusCode::kInvalidArgument,
    [](const std::string& path) {
      MutateGzPayload(path, [](const std::string& p) {
        AppendRaw(p, "{\"id\":900,\"name\":\"ragged\"}\n");
      });
    },
    [](const std::string& path) {
      MutateGzPayload(path, [](const std::string& p) {
        AppendRaw(p,
                  "{\"id\":xx,\"name\":\"bad\",\"score\":1.5,"
                  "\"day\":\"2021-01-01\"}\n");
      });
    },
};

class AdapterConformanceTest : public ::testing::TestWithParam<const Backend*> {
 protected:
  void SetUp() override {
    if (GetParam()->compressed && !InflateSupported()) {
      GTEST_SKIP() << "built without zlib";
    }
  }

  std::string FilePath() {
    return dir_.File(std::string("t") + GetParam()->extension);
  }

  /// Opens `path` on a fresh PM+C engine through Database::Open — format
  /// auto-detected, schema passed only when the backend needs it.
  std::unique_ptr<Database> OpenTable(const std::string& path) {
    auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
    OpenOptions options;
    if (GetParam()->needs_schema) options.schema = TestSchema();
    Status s = db->Open("t", path, options);
    EXPECT_TRUE(s.ok()) << s;
    return db;
  }

  TempDir dir_;
};

TEST_P(AdapterConformanceTest, AutoDetectsFormatAndAgreesColdVsWarm) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 200);
  auto db = OpenTable(path);
  ASSERT_NE(db->runtime("t"), nullptr);
  EXPECT_EQ(db->runtime("t")->adapter->format_name(), backend.format);

  const char* queries[] = {
      "SELECT COUNT(*) AS n, SUM(id) AS s FROM t",
      "SELECT id, name, score FROM t WHERE score >= 25.0 AND name = 'src3'",
      "SELECT name, COUNT(*) AS n FROM t WHERE day >= DATE '1991-11-23' "
      "GROUP BY name",
  };
  for (const char* sql : queries) {
    auto cold = db->Execute(sql);
    ASSERT_TRUE(cold.ok()) << sql << "\n" << cold.status();
    // Warm run: positional map + cache + statistics now populated; the
    // answer must not change.
    auto warm = db->Execute(sql);
    ASSERT_TRUE(warm.ok()) << sql << "\n" << warm.status();
    EXPECT_EQ(warm->Canonical(true), cold->Canonical(true)) << sql;
  }

  // A full scan completed, so the catalog knows the row count; ListTables
  // reports the adapter's format.
  std::vector<TableInfo> tables = db->ListTables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].name, "t");
  EXPECT_EQ(tables[0].format, backend.format);
  EXPECT_EQ(tables[0].storage, TableStorage::kRaw);
  EXPECT_EQ(tables[0].row_count, 200.0);
}

TEST_P(AdapterConformanceTest, EmptySourceYieldsEmptyResults) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 0);
  // An empty JSONL file has no first record to infer from: the schema must
  // be declared, as for CSV.
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  OpenOptions options;
  options.schema = TestSchema();
  options.format = backend.format;
  ASSERT_TRUE(db->Open("t", path, options).ok());

  auto count = db->Execute("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok()) << count.status();
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].int64(), 0);
  auto rows = db->Execute("SELECT id, name FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows->rows.empty());
}

TEST_P(AdapterConformanceTest, TruncatedTailHasDefinedBehaviour) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 50);
  backend.make_truncated(path, 50);
  auto db = OpenTable(path);

  auto result = db->Execute("SELECT id, name, score, day FROM t");
  if (backend.truncated_code == StatusCode::kOk) {
    // Indistinguishable from a legitimately short record: the present
    // prefix parses, the missing tail reads as NULL.
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.size(), 51u);
    auto nulls = db->Execute("SELECT COUNT(*) AS n, COUNT(score) AS s FROM t");
    ASSERT_TRUE(nulls.ok()) << nulls.status();
    EXPECT_EQ(nulls->rows[0][0].int64(), 51);
    EXPECT_EQ(nulls->rows[0][1].int64(), 50);
  } else {
    // Detectably corrupt: the query fails with a clean, specific status
    // instead of fabricating values.
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), backend.truncated_code)
        << result.status();
  }
}

TEST_P(AdapterConformanceTest, RaggedRecordReadsAsNulls) {
  const Backend& backend = *GetParam();
  if (backend.make_ragged == nullptr) {
    GTEST_SKIP() << "fixed-width formats cannot express ragged records";
  }
  std::string path = FilePath();
  backend.write(path, 20);
  backend.make_ragged(path);
  auto db = OpenTable(path);

  auto result =
      db->Execute("SELECT COUNT(*) AS n, COUNT(score) AS s, COUNT(id) AS i "
                  "FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows[0][0].int64(), 21);  // the ragged record still counts
  EXPECT_EQ(result->rows[0][1].int64(), 20);  // its missing score is NULL
  EXPECT_EQ(result->rows[0][2].int64(), 21);  // its present id is not
  auto ragged = db->Execute("SELECT id FROM t WHERE score IS NULL");
  ASSERT_TRUE(ragged.ok()) << ragged.status();
  ASSERT_EQ(ragged->rows.size(), 1u);
  EXPECT_EQ(ragged->rows[0][0].int64(), 900);
}

TEST_P(AdapterConformanceTest, MalformedValueFailsOnlyWhenTouched) {
  const Backend& backend = *GetParam();
  if (backend.make_malformed == nullptr) {
    GTEST_SKIP() << "binary formats cannot hold unconvertible field text";
  }
  std::string path = FilePath();
  backend.write(path, 20);
  backend.make_malformed(path);
  auto db = OpenTable(path);

  // Selective parsing: queries that never convert the bad cell succeed.
  EXPECT_TRUE(db->Execute("SELECT name FROM t").ok());
  auto touch = db->Execute("SELECT id FROM t");
  ASSERT_FALSE(touch.ok());
  EXPECT_EQ(touch.status().code(), StatusCode::kInvalidArgument)
      << touch.status();
  // The failure is per-query, not sticky.
  EXPECT_TRUE(db->Execute("SELECT score FROM t WHERE name = 'bad'").ok());
}

TEST_P(AdapterConformanceTest, EarlyCursorCloseStopsRawReads) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 100000);
  auto db = OpenTable(path);
  const RandomAccessFile* file = db->runtime("t")->adapter->file();
  const uint64_t file_size = file->size();

  auto cursor = db->Query("SELECT id FROM t");
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  RowBatch batch = cursor->MakeBatch();
  auto n = cursor->Next(&batch);
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_GT(*n, 0u);
  ASSERT_TRUE(cursor->Close().ok());
  const uint64_t after_close = file->bytes_read();
  EXPECT_LT(after_close, file_size)
      << "closing the cursor after one batch must leave most of the file "
       "unread";
  // And no reads happen once the cursor is closed.
  EXPECT_EQ(file->bytes_read(), after_close);
}

TEST_P(AdapterConformanceTest, CompressedAccountingSeparatesBothStreams) {
  const Backend& backend = *GetParam();
  if (!backend.compressed) {
    GTEST_SKIP() << "plain backends have a single byte stream";
  }
  std::string path = FilePath();
  backend.write(path, 5000);
  auto db = OpenTable(path);
  const RandomAccessFile* file = db->runtime("t")->adapter->file();
  const InflateFile* gz = file->AsInflateFile();
  ASSERT_NE(gz, nullptr);

  // size() is the decompressed extent (what scans and the positional map
  // address); the repetitive test rows compress well below it.
  const uint64_t decompressed = gz->size();
  const uint64_t compressed = gz->inner()->size();
  EXPECT_GT(decompressed, compressed);
  auto on_disk = FileSizeOf(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, compressed);

  auto result = db->Execute("SELECT COUNT(*) AS n, SUM(id) AS s FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows[0][0].int64(), 5000);

  // bytes_read() counts decompressed payload delivered to readers; the
  // cold full scan covered the whole stream. The compressed-side reads
  // stay bounded by a couple of sequential passes (the open-time format
  // sniff restarts from zero once, and input buffering rounds up to the
  // 64 KiB refill) — not the quadratic blow-up naive seeking would cost.
  EXPECT_GE(file->bytes_read(), decompressed);
  EXPECT_GE(gz->bytes_inflated(), decompressed);
  EXPECT_LE(gz->compressed_bytes_read(), 3 * compressed + 65536);
  EXPECT_GT(gz->compressed_bytes_read(), 0u);
}

/// Verifies the FindRecordBoundary contract on the table registered in
/// `db`: idempotence, monotonicity, and that every offset maps to the
/// smallest true record start at or after it (or the common end sentinel).
/// True record starts come from a full cursor walk, so the boundary hook
/// and the record iterator are checked against each other.
void CheckBoundaryContract(Database* db) {
  const RawSourceAdapter* adapter = db->runtime("t")->adapter.get();
  std::vector<uint64_t> starts;
  {
    auto cursor = adapter->OpenCursor();
    ASSERT_TRUE(cursor.ok()) << cursor.status();
    RecordRef rec;
    while (true) {
      auto has = (*cursor)->Next(&rec);
      if (!has.ok() || !*has) break;  // truncated tails end the walk early
      starts.push_back(rec.offset);
    }
  }
  const uint64_t file_size = adapter->file()->size();
  auto sentinel = adapter->FindRecordBoundary(file_size);
  ASSERT_TRUE(sentinel.ok()) << sentinel.status();

  // Every true start maps to itself; start-to-start, the mapping is the
  // identity (idempotence on the fixed points).
  for (uint64_t s : starts) {
    auto b = adapter->FindRecordBoundary(s);
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(*b, s);
  }

  // Arbitrary offsets — including mid-record, mid-field, at EOF and past
  // the last record — map to the smallest start at or after them.
  uint64_t prev = 0;
  const uint64_t step = std::max<uint64_t>(1, file_size / 512);
  for (uint64_t offset = 0; offset <= file_size; offset += step) {
    auto b = adapter->FindRecordBoundary(offset);
    ASSERT_TRUE(b.ok()) << b.status();
    auto it = std::lower_bound(starts.begin(), starts.end(), offset);
    uint64_t want = it != starts.end() ? *it : *sentinel;
    // Offsets past the data region (FITS block padding) also resolve to
    // the sentinel, which may lie before them.
    if (offset > *sentinel) want = *sentinel;
    EXPECT_EQ(*b, want) << "offset " << offset;
    EXPECT_GE(*b, prev) << "monotonicity at " << offset;  // monotone
    prev = *b;
    auto again = adapter->FindRecordBoundary(*b);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *b) << "idempotence at " << offset;
  }
}

TEST_P(AdapterConformanceTest, FindRecordBoundaryContract) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 150);
  auto db = OpenTable(path);
  CheckBoundaryContract(db.get());
}

TEST_P(AdapterConformanceTest, FindRecordBoundaryWithRaggedAndTruncatedTail) {
  const Backend& backend = *GetParam();
  if (backend.make_ragged == nullptr) {
    GTEST_SKIP() << "fixed-width formats cannot express ragged records";
  }
  std::string path = FilePath();
  backend.write(path, 30);
  backend.make_ragged(path);
  // A final record cut off mid-way with no terminator: no record starts
  // inside it, so every offset in it resolves to the end sentinel — the
  // unterminated tail belongs to whichever morsel contains its start.
  backend.make_truncated(path, 31);
  auto db = OpenTable(path);
  CheckBoundaryContract(db.get());

  const RawSourceAdapter* adapter = db->runtime("t")->adapter.get();
  const uint64_t file_size = adapter->file()->size();
  auto tail = adapter->FindRecordBoundary(file_size - 2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, file_size);
}

TEST_P(AdapterConformanceTest, FindRecordBoundaryAtExactEof) {
  const Backend& backend = *GetParam();
  std::string path = FilePath();
  backend.write(path, 10);
  auto db = OpenTable(path);
  const RawSourceAdapter* adapter = db->runtime("t")->adapter.get();
  const uint64_t file_size = adapter->file()->size();
  auto at_eof = adapter->FindRecordBoundary(file_size);
  ASSERT_TRUE(at_eof.ok());
  auto past_eof = adapter->FindRecordBoundary(file_size + 1000);
  ASSERT_TRUE(past_eof.ok());
  EXPECT_EQ(*past_eof, *at_eof);
  // The sentinel is itself a fixed point.
  auto again = adapter->FindRecordBoundary(*at_eof);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *at_eof);
}

TEST(CsvBoundaryTest, CrlfAndHeaderResolveToDataRecords) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  const std::string content =
      "id,name\r\n"       // header (record starts must skip it)
      "1,alpha\r\n"
      "2,beta\r\n"
      "3,gamma\r\n";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  CsvDialect dialect;
  dialect.has_header = true;
  Schema schema{{"id", TypeId::kInt64}, {"name", TypeId::kString}};
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->RegisterCsv("t", path, schema, dialect).ok());
  const RawSourceAdapter* adapter = db->runtime("t")->adapter.get();

  // boundary(0) is the first *data* record, not the header.
  const uint64_t first_data = content.find("1,alpha");
  auto b0 = adapter->FindRecordBoundary(0);
  ASSERT_TRUE(b0.ok());
  EXPECT_EQ(*b0, first_data);
  // An offset inside the header also resolves past it.
  auto b3 = adapter->FindRecordBoundary(3);
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(*b3, first_data);
  // CRLF: record starts sit after the '\n'; the '\r' belongs to the
  // preceding record's framing.
  const uint64_t second_data = content.find("2,beta");
  auto mid = adapter->FindRecordBoundary(first_data + 2);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, second_data);
  // And the full contract holds.
  CheckBoundaryContract(db.get());
}

TEST(CsvBoundaryTest, QuotedFieldsSnapToRecordStarts) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  const std::string content =
      "1,\"a,b\"\"c\",x\n"
      "2,\",,,\",y\n"
      "3,plain,z\n";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  CsvDialect dialect;
  dialect.quoting = true;
  Schema schema{{"id", TypeId::kInt64},
                {"q", TypeId::kString},
                {"t", TypeId::kString}};
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->RegisterCsv("t", path, schema, dialect).ok());
  // Offsets inside the quoted fields (commas, escaped quotes) snap to the
  // next record start — '\n' is a record boundary before quoting applies.
  CheckBoundaryContract(db.get());
}

INSTANTIATE_TEST_SUITE_P(AllFormats, AdapterConformanceTest,
                         ::testing::Values(&kCsvBackend, &kJsonlBackend,
                                           &kFitsBackend, &kGzCsvBackend,
                                           &kGzJsonlBackend),
                         [](const ::testing::TestParamInfo<const Backend*>&
                                info) { return info.param->label; });

TEST(FixedStrideScanTest, RowCountMultipleOfStripeStillFinalizesScan) {
  // 4096 rows = exactly one default stripe: the last stripe fills without
  // the cursor reporting EOF, and the scan must still finalize row count
  // and statistics (regression: the old FITS scan did, via its row-count
  // check after every stripe).
  TempDir dir;
  std::string path = dir.File("t.fits");
  WriteFitsRows(path, 4096);
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Open("t", path).ok());
  auto result = db->Execute("SELECT id, score FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 4096u);
  EXPECT_EQ(db->runtime("t")->known_row_count, 4096.0);
  EXPECT_TRUE(db->runtime("t")->stats_populated);
  EXPECT_NE(db->GetTableStats("t"), nullptr);
}

// ---------------------------------------------------------------------
// Registry behaviour
// ---------------------------------------------------------------------

TEST(AdapterRegistryTest, BuiltinFormatsRegistered) {
  AdapterRegistry& registry = AdapterRegistry::Global();
  EXPECT_NE(registry.Find("csv"), nullptr);
  EXPECT_NE(registry.Find("fits"), nullptr);
  EXPECT_NE(registry.Find("jsonl"), nullptr);
  EXPECT_EQ(registry.Find("parquet"), nullptr);
}

TEST(AdapterRegistryTest, SniffersPreferSpecificEvidence) {
  TempDir dir;
  AdapterRegistry& registry = AdapterRegistry::Global();

  // Extension-free JSONL: content sniffing ('{') must beat CSV's weak
  // plain-text fallback.
  std::string noext = dir.File("records");
  ASSERT_TRUE(WriteStringToFile(noext, "{\"a\":1}\n{\"a\":2}\n").ok());
  auto detected = registry.Detect(noext, "{\"a\":1}\n{\"a\":2}\n");
  ASSERT_TRUE(detected.ok()) << detected.status();
  EXPECT_EQ((*detected)->format_name(), "jsonl");

  // The FITS magic card wins regardless of the file name.
  auto fits = registry.Detect(dir.File("data.csv"), "SIMPLE  =          T");
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ((*fits)->format_name(), "fits");

  // Unrecognizable bytes are an error, not a guess.
  EXPECT_FALSE(registry.Detect(dir.File("blob.bin"),
                               std::string_view("\x00\x01\x02", 3))
                   .ok());
}

TEST(AdapterRegistryTest, UnknownForcedFormatIsRejected) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1\n").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  OpenOptions options;
  options.format = "parquet";
  Status s = db->Open("t", path, options);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(db->HasTable("t"));
}

TEST(AdapterRegistryTest, TsvExtensionGetsTabDelimiterByDefault) {
  TempDir dir;
  std::string path = dir.File("data.tsv");
  ASSERT_TRUE(WriteStringToFile(path, "1\tash\n2\tbirch\n").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  OpenOptions options;
  options.schema = Schema{{"id", TypeId::kInt64}, {"name", TypeId::kString}};
  ASSERT_TRUE(db->Open("t", path, options).ok());
  auto result = db->Execute("SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].str(), "birch");

  // Forcing the format (the RegisterCsv compatibility path) keeps the
  // caller's dialect verbatim: a comma-delimited file that merely happens
  // to be named .tsv must parse exactly as before.
  std::string comma = dir.File("comma.tsv");
  ASSERT_TRUE(WriteStringToFile(comma, "1,ash\n2,birch\n").ok());
  auto forced = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(forced
                  ->RegisterCsv("t", comma,
                                Schema{{"id", TypeId::kInt64},
                                       {"name", TypeId::kString}})
                  .ok());
  auto comma_result = forced->Execute("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(comma_result.ok()) << comma_result.status();
  ASSERT_EQ(comma_result->rows.size(), 1u);
  EXPECT_EQ(comma_result->rows[0][0].str(), "ash");
}

TEST(AdapterRegistryTest, JsonlConcatenatedObjectsOnOneLineAreCorruption) {
  // NDJSON means one value per line; yielding just the first object of
  // {"a":2}{"a":3} would silently drop data, so the cursor reports
  // container corruption instead.
  TempDir dir;
  std::string path = dir.File("t.jsonl");
  ASSERT_TRUE(
      WriteStringToFile(path, "{\"a\":1}\n{\"a\":2}{\"a\":3}\n").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Open("t", path).ok());
  auto result = db->Execute("SELECT a FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
      << result.status();
}

TEST(AdapterRegistryTest, JsonlMalformedSeparatorsAndNestedValues) {
  // Separator discipline: {,} and missing commas are corruption, like
  // concatenated objects. Nested values under a schema key project as
  // NULL (tokenized over, not projected), matching inference.
  TempDir dir;
  for (const char* bad : {"{\"a\":1}\n{,}\n", "{\"a\":1 \"b\":2}\n",
                          "{\"a\":1,,\"b\":2}\n", "{\"a\":1,}\n",
                          "{\"a\":,\"b\":2}\n", "{\"a\":}\n"}) {
    std::string path = dir.File("bad.jsonl");
    ASSERT_TRUE(WriteStringToFile(path, bad).ok());
    auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
    OpenOptions options;
    options.schema = Schema{{"a", TypeId::kInt64}, {"b", TypeId::kInt64}};
    ASSERT_TRUE(db->Open("t", path, options).ok());
    auto result = db->Execute("SELECT a FROM t");
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption) << bad;
  }

  std::string nested = dir.File("nested.jsonl");
  ASSERT_TRUE(WriteStringToFile(
                  nested, "{\"a\":{\"x\":1},\"b\":7}\n{\"a\":\"s\",\"b\":8}\n")
                  .ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  OpenOptions options;
  options.schema = Schema{{"a", TypeId::kString}, {"b", TypeId::kInt64}};
  ASSERT_TRUE(db->Open("t", nested, options).ok());
  auto result = db->Execute("SELECT a, b FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_TRUE(result->rows[0][0].is_null());  // nested object -> NULL
  EXPECT_EQ(result->rows[1][0].str(), "s");
}

TEST(AdapterRegistryTest, JsonlBlankLinesAreNotRecords) {
  // Trailing/embedded blank lines are formatting (editors, log shippers),
  // not rows: they must not surface as phantom all-NULL tuples, matching
  // how schema inference skips them.
  TempDir dir;
  std::string path = dir.File("t.jsonl");
  ASSERT_TRUE(
      WriteStringToFile(path, "{\"a\":1}\n\n{\"a\":2}\n   \n\n").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Open("t", path).ok());
  for (int run = 0; run < 2; ++run) {  // cold, then warm via pmap/cache
    auto result = db->Execute("SELECT COUNT(*) AS n, COUNT(a) AS a FROM t");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows[0][0].int64(), 2) << "run " << run;
    EXPECT_EQ(result->rows[0][1].int64(), 2) << "run " << run;
  }
}

TEST(AdapterRegistryTest, JsonlMissingKeysStayNullColdAndWarm) {
  // Sparse records: projected keys absent from a record read as NULL, on
  // the cold walk and again when the positional map is warm.
  TempDir dir;
  std::string path = dir.File("sparse.jsonl");
  ASSERT_TRUE(WriteStringToFile(path,
                                "{\"a\":1,\"b\":\"x\",\"c\":1.5}\n"
                                "{\"a\":2}\n"
                                "{\"b\":\"y\",\"c\":2.5}\n")
                  .ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Open("t", path).ok());
  for (int run = 0; run < 2; ++run) {
    auto result = db->Execute(
        "SELECT COUNT(*) AS n, COUNT(a) AS a, COUNT(b) AS b, COUNT(c) AS c "
        "FROM t");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows[0][0].int64(), 3) << "run " << run;
    EXPECT_EQ(result->rows[0][1].int64(), 2) << "run " << run;
    EXPECT_EQ(result->rows[0][2].int64(), 2) << "run " << run;
    EXPECT_EQ(result->rows[0][3].int64(), 2) << "run " << run;
    auto missing = db->Execute("SELECT b, c FROM t WHERE a = 2");
    ASSERT_TRUE(missing.ok()) << missing.status();
    ASSERT_EQ(missing->rows.size(), 1u);
    EXPECT_TRUE(missing->rows[0][0].is_null());
    EXPECT_TRUE(missing->rows[0][1].is_null());
  }
}

TEST(AdapterRegistryTest, JsonlSchemaInferenceFromFirstRecord) {
  TempDir dir;
  std::string path = dir.File("events.jsonl");
  ASSERT_TRUE(WriteStringToFile(
                  path,
                  "{\"user\":\"ada\",\"hits\":3,\"ratio\":0.5,"
                  "\"active\":true,\"since\":\"2020-04-01\"}\n"
                  "{\"user\":\"bob\",\"hits\":7,\"ratio\":1.25,"
                  "\"active\":false,\"since\":\"2021-09-15\"}\n")
                  .ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Open("events", path).ok());
  auto schema = db->GetTableSchema("events");
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ((*schema)->num_columns(), 5);
  EXPECT_EQ((*schema)->column(0).name, "user");
  EXPECT_EQ((*schema)->column(0).type, TypeId::kString);
  EXPECT_EQ((*schema)->column(1).type, TypeId::kInt64);
  EXPECT_EQ((*schema)->column(2).type, TypeId::kDouble);
  EXPECT_EQ((*schema)->column(3).type, TypeId::kBool);
  EXPECT_EQ((*schema)->column(4).type, TypeId::kDate);

  auto result = db->Execute(
      "SELECT user FROM events WHERE active AND since >= DATE '2020-01-01'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].str(), "ada");
}

}  // namespace
}  // namespace nodb
