#ifndef NODB_STORAGE_BUFFER_POOL_H_
#define NODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/heap_file.h"
#include "util/result.h"

namespace nodb {

/// Fixed-capacity LRU page cache over one HeapFile. Single-threaded (the
/// executor is single-threaded, like a single PostgreSQL backend); "pinning"
/// therefore reduces to the caller not holding frame pointers across
/// another Fetch.
class BufferPool {
 public:
  /// `file` must outlive the pool. `capacity` is in pages.
  BufferPool(const HeapFile* file, uint32_t capacity);

  /// Returns a read-only frame holding `page_id`, faulting it in if needed.
  /// The pointer is valid until `capacity` further Fetch calls.
  Result<const char*> Fetch(uint32_t page_id);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Drops all cached frames (simulates a cold buffer cache).
  void Clear();

 private:
  struct Frame {
    uint32_t page_id = UINT32_MAX;
    std::vector<char> data;
    std::list<uint32_t>::iterator lru_pos;
  };

  const HeapFile* file_;
  uint32_t capacity_;
  std::unordered_map<uint32_t, std::unique_ptr<Frame>> frames_;
  std::list<uint32_t> lru_;  // most recent at front
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nodb

#endif  // NODB_STORAGE_BUFFER_POOL_H_
