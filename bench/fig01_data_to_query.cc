// Figure 1 — "Improving user interaction with NoDB": cumulative
// data-to-query time. A traditional DBMS pays a load before Q1; external
// files answer Q1 immediately but pay a full scan forever; NoDB answers Q1
// immediately and amortizes.

#include "common.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner("Figure 1: data-to-query timeline (conceptual figure, measured)",
              "DBMS pays Load before Q1; external files re-pay every query; "
              "NoDB starts immediately and gets faster.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(20000 * args.scale);
  spec.cols = 150;  // the paper uses 150 attributes
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig01");
  Schema schema = MicroSchema(spec);

  Rng rng(args.seed);
  std::vector<std::string> queries;
  for (int q = 0; q < 4; ++q) {
    queries.push_back(RandomProjectionQuery("wide", spec.cols, 5, &rng));
  }

  struct Timeline {
    std::string name;
    double load = 0;
    std::vector<double> cumulative;
  };
  std::vector<Timeline> timelines;

  // Traditional DBMS: load, then query.
  {
    Timeline t{"PostgreSQL (load first)"};
    auto db = MakeEngine(SystemUnderTest::kPostgreSQL);
    EngineConfig cfg = db->config();
    auto load = db->LoadCsv("wide", csv, schema);
    if (!load.ok()) return 1;
    t.load = load->seconds;
    double cum = t.load;
    for (const std::string& q : queries) {
      cum += RunQuery(db.get(), q);
      t.cumulative.push_back(cum);
    }
    timelines.push_back(std::move(t));
  }
  // External files.
  {
    Timeline t{"External files"};
    auto db = MakeEngine(SystemUnderTest::kExternalFiles);
    if (!db->RegisterCsv("wide", csv, schema).ok()) return 1;
    double cum = 0;
    for (const std::string& q : queries) {
      cum += RunQuery(db.get(), q);
      t.cumulative.push_back(cum);
    }
    timelines.push_back(std::move(t));
  }
  // NoDB.
  {
    Timeline t{"PostgresRaw (NoDB)"};
    auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
    if (!db->RegisterCsv("wide", csv, schema).ok()) return 1;
    double cum = 0;
    for (const std::string& q : queries) {
      cum += RunQuery(db.get(), q);
      t.cumulative.push_back(cum);
    }
    timelines.push_back(std::move(t));
  }

  TextTable table({"system", "load(s)", "after Q1", "after Q2", "after Q3",
                   "after Q4"});
  for (const Timeline& t : timelines) {
    table.AddRow({t.name, Fmt(t.load), Fmt(t.cumulative[0]),
                  Fmt(t.cumulative[1]), Fmt(t.cumulative[2]),
                  Fmt(t.cumulative[3])});
  }
  table.Print();
  printf("\nExpected shape: NoDB reaches Q1 first; the loaded system's Q1 "
         "includes the load; external files grow linearly.\n");
  return 0;
}
