#include <gtest/gtest.h>

#include <map>

#include "plan/optimizer.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "util/rng.h"

namespace nodb {
namespace {

class FakeCatalog : public TableProvider {
 public:
  FakeCatalog() {
    schemas_["small"] = Schema{{"sk", TypeId::kInt64},
                               {"sv", TypeId::kString}};
    schemas_["big"] = Schema{{"bk", TypeId::kInt64},
                             {"fk", TypeId::kInt64},
                             {"bv", TypeId::kDouble}};
    schemas_["mid"] = Schema{{"mk", TypeId::kInt64},
                             {"mv", TypeId::kInt64}};
  }
  Result<const Schema*> GetTableSchema(const std::string& name) const override {
    auto it = schemas_.find(name);
    if (it == schemas_.end()) return Status::NotFound("no table " + name);
    return &it->second;
  }

 private:
  std::map<std::string, Schema> schemas_;
};

/// StatsProvider with fabricated row counts and uniform attribute stats.
class FakeStats : public StatsProvider {
 public:
  void SetTable(const std::string& name, const Schema& schema, double rows,
                int64_t lo, int64_t hi, double ndv) {
    rows_[name] = rows;
    auto stats = std::make_unique<TableStats>(schema);
    Rng rng(1);
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (schema.column(c).type != TypeId::kInt64) continue;
      for (int i = 0; i < 2000; ++i) {
        int64_t v = lo + rng.Uniform(0, static_cast<int64_t>(ndv) - 1) *
                             std::max<int64_t>(1, (hi - lo) / ndv);
        stats->AddValue(c, Value::Int64(v));
      }
    }
    stats->SetRowCount(static_cast<uint64_t>(rows));
    stats->FinalizeAll();
    stats_[name] = std::move(stats);
  }
  const TableStats* GetTableStats(const std::string& name) const override {
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second.get();
  }
  double GetRowCount(const std::string& name) const override {
    auto it = rows_.find(name);
    return it == rows_.end() ? -1 : it->second;
  }

 private:
  std::map<std::string, double> rows_;
  std::map<std::string, std::unique_ptr<TableStats>> stats_;
};

Result<std::unique_ptr<BoundQuery>> Bind(const std::string& sql) {
  static FakeCatalog catalog;
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  Binder binder(&catalog);
  return binder.Bind(*stmt);
}

TEST(PlannerTest, PushdownSplitsConjuncts) {
  auto q = Bind("SELECT sv FROM small, big "
                "WHERE sk = fk AND sk > 3 AND bv < 1.5");
  ASSERT_TRUE(q.ok()) << q.status();
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // One equi-join edge, one pushed conjunct per table.
  ASSERT_EQ((*plan)->joins.size(), 1u);
  EXPECT_EQ((*plan)->joins[0].probe_keys.size(), 1u);
  EXPECT_EQ((*plan)->scans[0].conjuncts.size(), 1u);  // sk > 3
  EXPECT_EQ((*plan)->scans[1].conjuncts.size(), 1u);  // bv < 1.5
}

TEST(PlannerTest, NeededColumnsSplitWherePayload) {
  auto q = Bind("SELECT sv FROM small WHERE sk > 3");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  const PlannedScan& scan = (*plan)->scans[0];
  EXPECT_EQ(scan.where_attrs, (std::vector<int>{0}));   // sk
  EXPECT_EQ(scan.payload_attrs, (std::vector<int>{1})); // sv
}

TEST(PlannerTest, JoinKeysCountAsPayload) {
  auto q = Bind("SELECT bv FROM small, big WHERE sk = fk AND sk < 9");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  // small: sk is a WHERE attr (filter) — fk on big is payload (join key).
  const PlannedScan& big = (*plan)->scans[1];
  EXPECT_TRUE(big.where_attrs.empty());
  EXPECT_EQ(big.payload_attrs, (std::vector<int>{1, 2}));  // fk, bv
}

TEST(PlannerTest, WithoutStatsDriverIsFromOrder) {
  auto q = Bind("SELECT sv FROM big, small WHERE sk = fk");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->driver_scan, 0);  // big first, per FROM order
}

TEST(PlannerTest, WithStatsSmallestTableDrives) {
  auto q = Bind("SELECT sv FROM big, small WHERE sk = fk");
  ASSERT_TRUE(q.ok());
  FakeStats stats;
  stats.SetTable("big", *(*q)->tables[0].schema, 1e6, 0, 1000, 100);
  stats.SetTable("small", *(*q)->tables[1].schema, 100, 0, 1000, 100);
  auto plan = PlanQuery(q->get(), &stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->driver_scan, 1);  // small drives; big is built/probed
}

TEST(PlannerTest, StatsOrderConjunctsBySelectivity) {
  auto q = Bind("SELECT sv FROM small WHERE sk > 3 AND sk = 7");
  ASSERT_TRUE(q.ok());
  FakeStats stats;
  stats.SetTable("small", *(*q)->tables[0].schema, 10000, 0, 100, 50);
  auto plan = PlanQuery(q->get(), &stats);
  ASSERT_TRUE(plan.ok());
  // Equality (1/ndv) is more selective than the range: evaluated first.
  const PlannedScan& scan = (*plan)->scans[0];
  ASSERT_EQ(scan.conjuncts.size(), 2u);
  EXPECT_NE(scan.conjuncts[0]->ToString().find("="), std::string::npos);
}

TEST(PlannerTest, AggStrategySwitchesOnStats) {
  auto q1 = Bind("SELECT sk, COUNT(*) FROM small GROUP BY sk");
  ASSERT_TRUE(q1.ok());
  auto without = PlanQuery(q1->get(), nullptr);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ((*without)->agg_strategy, AggStrategy::kSort);

  auto q2 = Bind("SELECT sk, COUNT(*) FROM small GROUP BY sk");
  ASSERT_TRUE(q2.ok());
  FakeStats stats;
  stats.SetTable("small", *(*q2)->tables[0].schema, 10000, 0, 100, 20);
  auto with = PlanQuery(q2->get(), &stats);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ((*with)->agg_strategy, AggStrategy::kHash);
  EXPECT_GT((*with)->agg_groups_hint, 0u);
}

TEST(PlannerTest, GlobalAggregationAlwaysHash) {
  auto q = Bind("SELECT COUNT(*) FROM small");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->agg_strategy, AggStrategy::kHash);
}

TEST(PlannerTest, ThreeWayJoinChainsConnected) {
  auto q = Bind(
      "SELECT sv FROM small, mid, big WHERE sk = mk AND mv = fk");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->joins.size(), 2u);
  // Each join has exactly one key pair.
  for (const PlannedJoin& j : (*plan)->joins) {
    EXPECT_EQ(j.probe_keys.size(), 1u);
  }
}

TEST(PlannerTest, ResidualOrPredicateAttachedAtJoin) {
  auto q = Bind(
      "SELECT sv FROM small, big WHERE sk = fk AND (sk > 90 OR bv < 0.1)");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ((*plan)->joins.size(), 1u);
  EXPECT_EQ((*plan)->joins[0].residual.size(), 1u);
}

TEST(PlannerTest, PlanToStringMentionsOperators) {
  auto q = Bind(
      "SELECT sk, COUNT(*) AS n FROM small GROUP BY sk ORDER BY n LIMIT 3");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  EXPECT_NE(text.find("Scan small"), std::string::npos);
  EXPECT_NE(text.find("SortAggregate"), std::string::npos);
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("Limit 3"), std::string::npos);
}

TEST(OptimizerTest, SelectivityHeuristicsWithoutStats) {
  auto q = Bind("SELECT sv FROM small WHERE sk > 3");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  double sel = EstimateConjunctSelectivity(
      *(*plan)->scans[0].conjuncts[0], nullptr, 0);
  EXPECT_DOUBLE_EQ(sel, 0.33);
}

TEST(OptimizerTest, RangeSelectivityFromHistogram) {
  Schema schema{{"k", TypeId::kInt64}};
  TableStats stats(schema);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    stats.AddValue(0, Value::Int64(rng.Uniform(0, 999)));
  }
  stats.FinalizeAll();

  auto q = Bind("SELECT sk FROM small WHERE sk < 100");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(q->get(), nullptr);
  ASSERT_TRUE(plan.ok());
  // Estimate the small<100 conjunct against the fabricated uniform stats.
  double sel = EstimateConjunctSelectivity(
      *(*plan)->scans[0].conjuncts[0], &stats, 0);
  EXPECT_NEAR(sel, 0.1, 0.05);
}

}  // namespace
}  // namespace nodb
