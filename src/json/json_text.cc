#include "json/json_text.h"

#include <cstdint>

namespace nodb {

namespace {

/// One past the closing quote of the string whose opening quote is at `i`;
/// s.size() if the string never closes.
size_t SkipJsonString(std::string_view s, size_t i) {
  ++i;  // opening quote
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
      continue;
    }
    if (s[i] == '"') return i + 1;
    ++i;
  }
  return s.size();
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses the 4 hex digits after a "\u"; -1 on malformed input.
int ParseHex4(std::string_view s, size_t i) {
  if (i + 4 > s.size()) return -1;
  int code = 0;
  for (int k = 0; k < 4; ++k) {
    int d = HexDigit(s[i + k]);
    if (d < 0) return -1;
    code = (code << 4) | d;
  }
  return code;
}

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

size_t SkipJsonWs(std::string_view s, size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
  return i;
}

size_t SkipJsonValue(std::string_view s, size_t i) {
  if (i >= s.size()) return s.size();
  if (s[i] == '"') return SkipJsonString(s, i);
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '"') {
        i = SkipJsonString(s, i);
        continue;
      }
      if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return s.size();
  }
  // Scalar literal: number, true, false, null.
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\t' && s[i] != '\r' && s[i] != '\n') {
    ++i;
  }
  return i;
}

bool UnescapeJsonString(std::string_view token, std::string* out) {
  out->clear();
  if (token.empty() || token[0] != '"') return false;
  size_t i = 1;
  while (i < token.size()) {
    char c = token[i];
    if (c == '"') return true;  // closing quote
    if (c != '\\') {
      out->push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= token.size()) return false;
    char esc = token[i + 1];
    i += 2;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        int code = ParseHex4(token, i);
        if (code < 0) return false;
        i += 4;
        uint32_t cp = static_cast<uint32_t>(code);
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: a \uXXXX low surrogate must follow.
          if (i + 2 > token.size() || token[i] != '\\' ||
              token[i + 1] != 'u') {
            return false;
          }
          int low = ParseHex4(token, i + 2);
          if (low < 0xDC00 || low > 0xDFFF) return false;
          i += 6;
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return false;  // unpaired low surrogate
        }
        AppendUtf8(out, cp);
        break;
      }
      default:
        return false;
    }
  }
  return false;  // the string never closed
}

void AppendJsonQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out->append("\\u00");
          out->push_back(kHex[(c >> 4) & 0xF]);
          out->push_back(kHex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace nodb
