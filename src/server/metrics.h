#ifndef NODB_SERVER_METRICS_H_
#define NODB_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nodb {

/// Plain snapshot of the server's live counters, returned by
/// QueryServer::Stats() and serialized by the STATS protocol verb. Every
/// field is a consistent-enough point-in-time read of an atomic counter;
/// the struct itself has no concurrency obligations.
struct ServerStats {
  // --- sessions ---
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  int64_t sessions_active = 0;

  // --- query lifecycle ---
  uint64_t queries_started = 0;    // admitted and begun executing
  uint64_t queries_finished = 0;   // drained to completion, status ok
  uint64_t queries_failed = 0;     // execution error (not cancel/deadline)
  uint64_t queries_cancelled = 0;  // CANCEL verb or client disconnect
  uint64_t queries_deadline = 0;   // killed by deadline expiry
  uint64_t queries_rejected = 0;   // refused by admission control

  // --- streamed volume ---
  uint64_t rows_streamed = 0;
  uint64_t bytes_streamed = 0;

  // --- admission (cold = first-ever scan of a raw table still pending) ---
  uint64_t cold_admitted = 0;
  uint64_t warm_admitted = 0;
  int64_t cold_active = 0;
  int64_t warm_active = 0;
  int64_t cold_queued = 0;
  int64_t warm_queued = 0;

  // --- latency over recently finished queries (ms) ---
  uint64_t latency_samples = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  // --- warm-restart snapshots (merged in by QueryServer::Stats from the
  //     engine's SnapshotCounters; all zero when the feature is off) ---
  uint64_t snapshot_loads = 0;
  uint64_t snapshot_load_misses = 0;
  uint64_t snapshot_load_stale = 0;
  uint64_t snapshot_load_corrupt = 0;
  uint64_t snapshot_saves = 0;
  uint64_t snapshot_save_failures = 0;
  uint64_t snapshot_bytes_loaded = 0;
  uint64_t snapshot_bytes_saved = 0;

  /// Per-table slice of the STATS payload: snapshot state plus the raw-file
  /// I/O accounting that proves (or disproves) a warm restart.
  struct TableView {
    std::string name;
    std::string snapshot_state;  // SnapshotStateName: none/loaded/stale/...
    uint64_t snapshot_bytes = 0;
    /// Raw-file bytes read through the adapter since Open; ~0 right after a
    /// successful snapshot load, file-sized after a cold first scan. For
    /// compressed sources: decompressed payload bytes.
    uint64_t bytes_read = 0;
    /// Compressed-source (gzip) accounting; all zero for plain files.
    /// `gz_bytes_inflated` stays 0 across a warm restart whose queries are
    /// cache-served, and grows by at most a checkpoint interval per
    /// pmap-directed seek — the restart smoke test's gate.
    bool compressed = false;
    uint64_t gz_checkpoints = 0;
    uint64_t gz_bytes_inflated = 0;
    /// Known row count; negative while unknown.
    double rows = -1;
    /// Workload-driven promotion state (src/adaptive): attributes currently
    /// resident in the promoted columnar tier, their footprint, and the
    /// lifetime number of tier transitions. All zero when the subsystem is
    /// off.
    std::vector<int> promoted_columns;
    uint64_t promoted_bytes = 0;
    uint64_t promotions = 0;
    uint64_t demotions = 0;
  };
  std::vector<TableView> tables;
};

/// Fixed-size ring of recent query latencies; Percentile snapshots and
/// sorts a copy, so recording stays O(1) under a short critical section.
class LatencyRing {
 public:
  static constexpr size_t kCapacity = 1024;

  void Record(double ms);
  /// `p` in [0,100]; 0 when no samples were recorded yet.
  double Percentile(double p) const;
  uint64_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;  // ring once kCapacity reached
  size_t next_ = 0;
  uint64_t total_ = 0;
};

/// The server's live counters. Sessions bump these directly; the admission
/// controller owns the active/queued gauges and QueryServer::Stats()
/// composes the full ServerStats snapshot.
struct ServerMetrics {
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_closed{0};

  std::atomic<uint64_t> queries_started{0};
  std::atomic<uint64_t> queries_finished{0};
  std::atomic<uint64_t> queries_failed{0};
  std::atomic<uint64_t> queries_cancelled{0};
  std::atomic<uint64_t> queries_deadline{0};
  std::atomic<uint64_t> queries_rejected{0};

  std::atomic<uint64_t> rows_streamed{0};
  std::atomic<uint64_t> bytes_streamed{0};

  std::atomic<uint64_t> cold_admitted{0};
  std::atomic<uint64_t> warm_admitted{0};

  LatencyRing latency;

  /// Fills the counter-derived part of a snapshot (admission gauges are
  /// merged in by the server, which owns the controller).
  ServerStats Snapshot() const;
};

}  // namespace nodb

#endif  // NODB_SERVER_METRICS_H_
