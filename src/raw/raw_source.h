#ifndef NODB_RAW_RAW_SOURCE_H_
#define NODB_RAW_RAW_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// The pluggable raw-source API. NoDB's adaptive machinery — positional map,
/// binary-value cache, adaptive statistics, selective tokenizing/parsing —
/// is format-independent infrastructure owned by the engine (RawScanOp). A
/// RawSourceAdapter contributes only what is genuinely format-specific:
/// record iteration, schema discovery, and field-level tokenize/parse hooks.
/// Any format that can (a) enumerate records and (b) locate/convert a field
/// inside a record plugs in here and gets the positional map, cache,
/// statistics and batched cursors for free.

/// Sentinel for "field position unknown / not present". Identical in value
/// to PositionalMap::kUnknown so positions flow between the map and the
/// adapter hooks without translation.
inline constexpr uint32_t kNoFieldPos = UINT32_MAX;

/// Sentinel stored by the scan (never returned by adapter hooks) for a
/// field *known to be absent* from its record. Full-record tokenizers
/// (unordered-key formats) resolve presence and absence in the same walk;
/// persisting absence in the positional map lets warm queries over sparse
/// data read NULL from an O(1) probe instead of re-walking the record —
/// kNoFieldPos alone cannot distinguish "never looked" from "looked,
/// absent".
inline constexpr uint32_t kAbsentFieldPos = UINT32_MAX - 1;

/// One raw record handed from a RecordCursor to the scan: the absolute file
/// offset of its first byte (what the positional map's spine stores) plus
/// its payload — a text line for delimited formats, a fixed-width binary row
/// for FITS-like formats. The view is valid until the cursor's next
/// Next()/SeekToRecord() call.
struct RecordRef {
  uint64_t offset = 0;
  std::string_view data;
};

/// Streaming record iterator over one raw file. Cursors are per-query
/// (cheap); the adapter they came from owns the file handle and outlives
/// them.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;

  /// Reads the next record; returns false at end of input. A corrupt or
  /// truncated container (not a merely ragged record) is an error.
  virtual Result<bool> Next(RecordRef* rec) = 0;

  /// Repositions at record `index`, whose first byte is at `offset`.
  /// Fixed-stride cursors may ignore `offset` (the position is arithmetic);
  /// variable-length cursors may ignore `index`. Callers obtain `offset`
  /// from the positional map's spine.
  virtual Status SeekToRecord(uint64_t index, uint64_t offset) = 0;
};

/// Capabilities of a raw format, consulted by the engine when wiring the
/// adaptive structures and driving the scan.
struct RawTraits {
  /// Field positions vary per record, so remembering them pays: the engine
  /// attaches a positional map (spine + attribute positions). False for
  /// fixed-stride formats where every position is arithmetic.
  bool variable_positions = true;
  /// Record index -> file offset is computable: seeks need no spine and the
  /// row count is known without a full scan (see row_count_hint).
  bool fixed_stride = false;
  /// Backward incremental tokenizing from a positional-map anchor is
  /// unambiguous (CSV without quoting). When false the engine only
  /// tokenizes forward.
  bool backward_tokenize = false;
  /// Attribute 0 always starts at record offset 0, letting the engine skip
  /// a FindForward call for the first attribute.
  bool attr0_at_start = false;
  /// FindForward ignores its anchor and tokenizes the whole record,
  /// reporting every tracked field through the sink (formats with unordered
  /// fields). The engine then calls it at most once per record: tracked
  /// attributes still unresolved afterwards are definitively absent (NULL),
  /// not worth another walk.
  bool full_record_tokenize = false;
};

/// Receives field start offsets discovered while tokenizing, so one forward
/// walk feeds every tracked attribute (the paper's "learn as much as
/// possible" map population, §4.2). `slot_of[attr]` maps an attribute to its
/// tracked slot or -1; positions land in `pos[slot]`.
///
/// The sink is also the adapter's error channel for *container* corruption
/// noticed mid-walk (a record that is not one well-formed unit, e.g. two
/// concatenated JSON objects on one line): FlagCorrupt() makes the scan fail
/// the query with a Corruption status instead of silently dropping data.
/// Fusing the check into the walk keeps validation free — every record is
/// walked in full the first time it is processed, and warm scans that jump
/// straight to remembered positions re-read only validated records.
struct PositionSink {
  const int* slot_of = nullptr;
  uint32_t* pos = nullptr;
  bool* corrupt = nullptr;

  void Record(int attr, uint32_t p) const {
    int s = slot_of[attr];
    if (s >= 0) pos[s] = p;
  }
  void FlagCorrupt() const {
    if (corrupt != nullptr) *corrupt = true;
  }
};

/// One registered raw source: format-specific state (dialect, header
/// layout), the discovered schema, and the stripe-level tokenize/parse hooks
/// the adaptive scan drives. Adapters are immutable after construction and
/// shared by concurrent cursors; all per-record scratch lives in the caller.
///
/// Field positions are byte offsets relative to the record start (32-bit, as
/// in the positional map). The contract mirrors NoDB's treatment of raw
/// text: *structural* shortfalls (short row, missing key) surface as
/// kNoFieldPos and become NULL; *conversion* failures (malformed value text)
/// surface as an error Status from ParseField.
class RawSourceAdapter {
 public:
  virtual ~RawSourceAdapter() = default;

  virtual std::string_view format_name() const = 0;
  virtual const RawTraits& traits() const = 0;
  virtual const Schema& schema() const = 0;
  virtual const std::string& path() const = 0;
  /// The underlying file, kept open across queries (I/O accounting and
  /// sizing; never null).
  virtual const RandomAccessFile* file() const = 0;

  /// Exact row count if the format knows it without scanning (fixed-stride
  /// headers); negative otherwise.
  virtual int64_t row_count_hint() const { return -1; }

  virtual Result<std::unique_ptr<RecordCursor>> OpenCursor() const = 0;

  /// Chunking hook for parallel morsel scans: the file offset of the first
  /// *data* record starting at or after `offset` (snapping an arbitrary
  /// split point to a record boundary — the next newline for delimited
  /// text, the next stride multiple for fixed-width binary). Contract:
  ///
  ///  * boundary(0) is the first data record (any header lies before it);
  ///  * the result is >= offset, and idempotent:
  ///    boundary(boundary(x)) == boundary(x);
  ///  * monotone: x <= y implies boundary(x) <= boundary(y);
  ///  * when no record starts at or after `offset` (including offsets past
  ///    EOF, or inside a ragged final record with no terminator), every
  ///    such offset maps to one common end sentinel — so consecutive split
  ///    points [a, b) always partition the records without gap or overlap.
  ///
  /// A split point may land anywhere — mid-field, mid-quoted-text,
  /// mid-escape — and must still resolve to a true record start; this is
  /// what lets N workers scan disjoint morsels whose concatenation is
  /// exactly the serial scan.
  virtual Result<uint64_t> FindRecordBoundary(uint64_t offset) const = 0;

  // ------------------------------------------------------------------
  // Tokenize/parse hooks (driven per record by RawScanOp)
  // ------------------------------------------------------------------

  /// Start offset of field `to_attr`, tokenizing forward from the known
  /// start of `from_attr` at `from_pos` (`from_attr == -1` means "start of
  /// record"). Every field start discovered along the way — including
  /// `to_attr` itself — is reported through `sink`. Returns kNoFieldPos if
  /// the record ends first or the field is absent. Formats without ordered
  /// fields may ignore the anchor and walk the whole record (reporting all
  /// fields via `sink`, so the walk happens at most once per record).
  virtual uint32_t FindForward(const RecordRef& rec, int from_attr,
                               uint32_t from_pos, int to_attr,
                               const PositionSink& sink) const = 0;

  /// Backward variant: walk left from the known start of `from_attr` at
  /// `from_pos` to `to_attr` (< from_attr). Only called when
  /// traits().backward_tokenize; kNoFieldPos falls back to FindForward.
  virtual uint32_t FindBackward(const RecordRef& rec, int from_attr,
                                uint32_t from_pos, int to_attr,
                                const PositionSink& sink) const {
    (void)rec, (void)from_attr, (void)from_pos, (void)to_attr, (void)sink;
    return kNoFieldPos;
  }

  /// Batch variant of FindForward for dense scans: resolves the starts of
  /// fields 0..upto in one pass, writing them to `starts` (which must hold
  /// upto+1 entries), and returns how many fields the record actually has
  /// up to that bound. Returns -1 when the format has no batch tokenizer
  /// (the caller falls back to the incremental anchor walk). Offsets are
  /// identical to what per-field FindForward calls would discover.
  virtual int TokenizeRecord(const RecordRef& rec, int upto,
                             uint32_t* starts) const {
    (void)rec, (void)upto, (void)starts;
    return -1;
  }

  /// One past the last byte of field `attr` starting at `pos`.
  /// `next_attr_pos` is the known start of field attr+1 (kNoFieldPos when
  /// unknown); delimited formats can derive the end from it without
  /// rescanning.
  virtual uint32_t FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                            uint32_t next_attr_pos) const = 0;

  /// Converts field `attr` spanning [pos, end) into a typed Value — the
  /// expensive conversion step that selective parsing defers or skips.
  virtual Result<Value> ParseField(const RecordRef& rec, int attr,
                                   uint32_t pos, uint32_t end) const = 0;
};

}  // namespace nodb

#endif  // NODB_RAW_RAW_SOURCE_H_
