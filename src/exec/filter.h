#ifndef NODB_EXEC_FILTER_H_
#define NODB_EXEC_FILTER_H_

#include <vector>

#include "exec/operator.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace nodb {

/// Drops rows failing any of `conjuncts` (evaluated in order with
/// short-circuiting). Scans push their own filters down; this operator
/// handles residual predicates that could not be pushed.
class FilterOp final : public Operator {
 public:
  /// `conjuncts` must outlive the operator.
  FilterOp(OperatorPtr child, const std::vector<ExprPtr>* conjuncts)
      : child_(std::move(child)), conjuncts_(conjuncts) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    while (true) {
      NODB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      bool pass = true;
      for (const ExprPtr& c : *conjuncts_) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*c, *row));
        if (!Evaluator::IsTruthy(v)) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<ExprPtr>* conjuncts_;
};

}  // namespace nodb

#endif  // NODB_EXEC_FILTER_H_
