#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/sort.h"
#include "util/rng.h"

namespace nodb {
namespace {

/// Operator-level tests against a canned row source, isolating executor
/// semantics from scans and planning.
class VectorSource final : public Operator {
 public:
  explicit VectorSource(std::vector<Row> rows) : rows_(std::move(rows)) {}
  Status Open() override {
    next_ = 0;
    return Status::OK();
  }
  Result<size_t> Next(RowBatch* batch) override {
    batch->Clear();
    while (!batch->full() && next_ < rows_.size()) {
      batch->PushBack(rows_[next_++]);  // copy; the source survives re-Open
    }
    return batch->size();
  }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

ExprPtr Col(int i, TypeId t) {
  return std::make_unique<ColumnRefExpr>(i, t, "c" + std::to_string(i));
}
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr IntCmp(CompareOp op, int col, int64_t v) {
  return std::make_unique<ComparisonExpr>(op, Col(col, TypeId::kInt64),
                                          Lit(Value::Int64(v)));
}

/// Drains an operator with a deliberately tiny batch so every test crosses
/// batch boundaries (partial final batches, resuming mid match-list...).
std::vector<Row> Drain(Operator* op, size_t batch_capacity = 3) {
  EXPECT_TRUE(op->Open().ok());
  std::vector<Row> rows;
  RowBatch batch(batch_capacity);
  while (true) {
    auto n = op->Next(&batch);
    EXPECT_TRUE(n.ok()) << n.status();
    if (!n.ok() || *n == 0) break;
    EXPECT_EQ(*n, batch.size());
    for (size_t i = 0; i < *n; ++i) rows.push_back(batch[i]);
  }
  EXPECT_TRUE(op->Close().ok());
  return rows;
}

std::vector<Row> IntRows(std::initializer_list<std::pair<int64_t, int64_t>> v) {
  std::vector<Row> rows;
  for (auto [a, b] : v) {
    rows.push_back({Value::Int64(a), Value::Int64(b)});
  }
  return rows;
}

// ---------------------------------------------------------------------
// RowBatch / batch contract
// ---------------------------------------------------------------------

TEST(RowBatchTest, RecyclesSlotsAcrossClear) {
  RowBatch batch(2);
  EXPECT_EQ(batch.capacity(), 2u);
  EXPECT_TRUE(batch.empty());
  batch.PushRow() = {Value::Int64(1)};
  batch.PushRow() = {Value::Int64(2)};
  EXPECT_TRUE(batch.full());
  batch.Clear();
  EXPECT_EQ(batch.size(), 0u);
  // A recycled slot may hold stale values; producers overwrite it.
  Row& slot = batch.PushRow();
  slot.assign(1, Value::Int64(7));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0][0].int64(), 7);
  batch.PopRow();
  EXPECT_TRUE(batch.empty());
}

TEST(RowBatchTest, ZeroCapacityClampsToOne) {
  RowBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1u);
}

TEST(FilterOpTest, NeverReturnsEmptyMidStreamBatch) {
  // 10 rows of which only the last passes: with capacity 3, the filter must
  // keep pulling through all-filtered child batches instead of returning an
  // empty batch mid-stream (0 is reserved for exhaustion).
  std::vector<Row> input;
  for (int64_t i = 0; i < 10; ++i) {
    input.push_back({Value::Int64(i), Value::Int64(0)});
  }
  std::vector<ExprPtr> conjuncts;
  conjuncts.push_back(IntCmp(CompareOp::kGe, 0, 9));
  FilterOp filter(std::make_unique<VectorSource>(input), &conjuncts);
  ASSERT_TRUE(filter.Open().ok());
  RowBatch batch(3);
  auto n = filter.Next(&batch);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_EQ(batch[0][0].int64(), 9);
  n = filter.Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  ASSERT_TRUE(filter.Close().ok());
}

TEST(LimitOpTest, TruncatesMidBatch) {
  // 7 input rows, LIMIT 5, capacity 3: batches of 3, 2, then exhaustion —
  // and the child is never pulled again after the limit is met.
  std::vector<Row> input;
  for (int64_t i = 0; i < 7; ++i) {
    input.push_back({Value::Int64(i), Value::Int64(0)});
  }
  LimitOp limit(std::make_unique<VectorSource>(input), 5);
  ASSERT_TRUE(limit.Open().ok());
  RowBatch batch(3);
  auto n = limit.Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  n = limit.Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  n = limit.Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  ASSERT_TRUE(limit.Close().ok());
}

// ---------------------------------------------------------------------
// Filter / Project / Limit / Sort
// ---------------------------------------------------------------------

TEST(FilterOpTest, DropsFailingAndNullRows) {
  std::vector<Row> input = IntRows({{1, 10}, {5, 20}, {3, 30}});
  input.push_back({Value::Null(TypeId::kInt64), Value::Int64(40)});
  std::vector<ExprPtr> conjuncts;
  conjuncts.push_back(IntCmp(CompareOp::kGe, 0, 3));  // NULL -> not truthy
  FilterOp filter(std::make_unique<VectorSource>(input), &conjuncts);
  auto out = Drain(&filter);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].int64(), 5);
  EXPECT_EQ(out[1][0].int64(), 3);
}

TEST(FilterOpTest, MultipleConjunctsShortCircuit) {
  std::vector<ExprPtr> conjuncts;
  conjuncts.push_back(IntCmp(CompareOp::kGt, 0, 1));
  conjuncts.push_back(IntCmp(CompareOp::kLt, 1, 25));
  FilterOp filter(
      std::make_unique<VectorSource>(IntRows({{1, 10}, {5, 20}, {7, 30}})),
      &conjuncts);
  auto out = Drain(&filter);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].int64(), 5);
}

TEST(ProjectOpTest, EvaluatesExpressions) {
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::make_unique<ArithmeticExpr>(
      ArithOp::kAdd, TypeId::kInt64, Col(0, TypeId::kInt64),
      Col(1, TypeId::kInt64)));
  ProjectOp project(
      std::make_unique<VectorSource>(IntRows({{1, 10}, {2, 20}})), &exprs);
  auto out = Drain(&project);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0][0].int64(), 11);
  EXPECT_EQ(out[1][0].int64(), 22);
}

TEST(LimitOpTest, StopsEarly) {
  LimitOp limit(
      std::make_unique<VectorSource>(IntRows({{1, 0}, {2, 0}, {3, 0}})), 2);
  auto out = Drain(&limit);
  ASSERT_EQ(out.size(), 2u);
  LimitOp zero(std::make_unique<VectorSource>(IntRows({{1, 0}})), 0);
  EXPECT_TRUE(Drain(&zero).empty());
}

TEST(SortOpTest, MultiKeyWithNullsLast) {
  std::vector<Row> input = IntRows({{2, 9}, {1, 5}, {2, 1}});
  input.push_back({Value::Null(TypeId::kInt64), Value::Int64(7)});
  std::vector<BoundOrderKey> keys = {{0, false}, {1, true}};
  SortOp sort(std::make_unique<VectorSource>(input), &keys);
  auto out = Drain(&sort);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0][0].int64(), 1);
  EXPECT_EQ(out[1][0].int64(), 2);
  EXPECT_EQ(out[1][1].int64(), 9);  // desc secondary
  EXPECT_EQ(out[2][1].int64(), 1);
  EXPECT_TRUE(out[3][0].is_null());  // NULLs last
}

TEST(SortOpTest, SortThenLimitIsTopK) {
  // The ORDER BY ... LIMIT plan shape: Limit over Sort must yield exactly
  // the k greatest rows, regardless of input order.
  std::vector<BoundOrderKey> keys = {{0, true}};  // c0 descending
  auto sort = std::make_unique<SortOp>(
      std::make_unique<VectorSource>(
          IntRows({{5, 0}, {1, 1}, {4, 2}, {2, 3}, {3, 4}})),
      &keys);
  LimitOp limit(std::move(sort), 2);
  auto out = Drain(&limit);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].int64(), 5);
  EXPECT_EQ(out[1][0].int64(), 4);
}

TEST(SortOpTest, EmptyInputYieldsEmptyOutput) {
  std::vector<BoundOrderKey> keys = {{0, false}};
  SortOp sort(std::make_unique<VectorSource>(std::vector<Row>{}), &keys);
  EXPECT_TRUE(Drain(&sort).empty());
}

// ---------------------------------------------------------------------
// Aggregation: both strategies must agree
// ---------------------------------------------------------------------

class AggregateStrategyTest : public ::testing::TestWithParam<AggStrategy> {};

TEST_P(AggregateStrategyTest, GroupedSumAndCount) {
  std::vector<Row> input =
      IntRows({{1, 10}, {2, 20}, {1, 30}, {3, 5}, {2, 2}});
  std::vector<ExprPtr> group_by;
  group_by.push_back(Col(0, TypeId::kInt64));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col(1, TypeId::kInt64)});
  aggs.push_back({AggFunc::kCountStar, nullptr});
  AggregateOp agg(std::make_unique<VectorSource>(input), &group_by, &aggs,
                  GetParam(), 8);
  auto out = Drain(&agg);
  ASSERT_EQ(out.size(), 3u);
  int64_t sum_for_1 = 0, count_for_1 = 0;
  for (const Row& row : out) {
    if (row[0].int64() == 1) {
      sum_for_1 = row[1].int64();
      count_for_1 = row[2].int64();
    }
  }
  EXPECT_EQ(sum_for_1, 40);
  EXPECT_EQ(count_for_1, 2);
}

TEST_P(AggregateStrategyTest, EmptyInputGlobalVsGrouped) {
  std::vector<ExprPtr> no_groups;
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr});
  AggregateOp global(std::make_unique<VectorSource>(std::vector<Row>{}),
                     &no_groups, &aggs, GetParam(), 1);
  auto out = Drain(&global);
  ASSERT_EQ(out.size(), 1u);  // global agg over nothing: one zero row
  EXPECT_EQ(out[0][0].int64(), 0);

  std::vector<ExprPtr> group_by;
  group_by.push_back(Col(0, TypeId::kInt64));
  AggregateOp grouped(std::make_unique<VectorSource>(std::vector<Row>{}),
                      &group_by, &aggs, GetParam(), 1);
  EXPECT_TRUE(Drain(&grouped).empty());  // grouped agg over nothing: no rows
}

TEST_P(AggregateStrategyTest, NullGroupKeysFormOneGroup) {
  std::vector<Row> input;
  input.push_back({Value::Null(TypeId::kInt64), Value::Int64(1)});
  input.push_back({Value::Null(TypeId::kInt64), Value::Int64(2)});
  input.push_back({Value::Int64(7), Value::Int64(3)});
  std::vector<ExprPtr> group_by;
  group_by.push_back(Col(0, TypeId::kInt64));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col(1, TypeId::kInt64)});
  AggregateOp agg(std::make_unique<VectorSource>(input), &group_by, &aggs,
                  GetParam(), 4);
  auto out = Drain(&agg);
  ASSERT_EQ(out.size(), 2u);
  int64_t null_sum = -1;
  for (const Row& row : out) {
    if (row[0].is_null()) null_sum = row[1].int64();
  }
  EXPECT_EQ(null_sum, 3);  // SQL groups NULL keys together
}

TEST_P(AggregateStrategyTest, RandomizedAgreesWithModel) {
  Rng rng(31);
  std::vector<Row> input;
  std::map<int64_t, std::pair<int64_t, int64_t>> model;  // key -> (sum, n)
  for (int i = 0; i < 2000; ++i) {
    int64_t k = rng.Uniform(0, 15);
    int64_t v = rng.Uniform(-100, 100);
    input.push_back({Value::Int64(k), Value::Int64(v)});
    model[k].first += v;
    model[k].second += 1;
  }
  std::vector<ExprPtr> group_by;
  group_by.push_back(Col(0, TypeId::kInt64));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col(1, TypeId::kInt64)});
  aggs.push_back({AggFunc::kCount, Col(1, TypeId::kInt64)});
  AggregateOp agg(std::make_unique<VectorSource>(input), &group_by, &aggs,
                  GetParam(), 16);
  auto out = Drain(&agg);
  ASSERT_EQ(out.size(), model.size());
  for (const Row& row : out) {
    auto it = model.find(row[0].int64());
    ASSERT_NE(it, model.end());
    EXPECT_EQ(row[1].int64(), it->second.first);
    EXPECT_EQ(row[2].int64(), it->second.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, AggregateStrategyTest,
                         ::testing::Values(AggStrategy::kHash,
                                           AggStrategy::kSort),
                         [](const ::testing::TestParamInfo<AggStrategy>& i) {
                           return i.param == AggStrategy::kHash ? "Hash"
                                                                : "Sort";
                         });

// ---------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------

/// Working-row layout for the join tests: width 3, probe table at offset 0
/// (2 cols), build table at offset 2 (1 col).
std::vector<Row> ProbeRows() {
  std::vector<Row> rows;
  for (auto [a, b] : std::initializer_list<std::pair<int64_t, int64_t>>{
           {1, 10}, {2, 20}, {3, 30}, {2, 21}}) {
    rows.push_back({Value::Int64(a), Value::Int64(b), Value()});
  }
  return rows;
}

std::vector<Row> BuildRows() {
  std::vector<Row> rows;
  for (int64_t k : {2, 3, 3, 9}) {
    rows.push_back({Value(), Value(), Value::Int64(k)});
  }
  return rows;
}

TEST(HashJoinOpTest, InnerJoinWithDuplicates) {
  PlannedJoin join;
  join.probe_keys.push_back(Col(0, TypeId::kInt64));
  join.build_keys.push_back(Col(2, TypeId::kInt64));
  HashJoinOp op(std::make_unique<VectorSource>(ProbeRows()),
                std::make_unique<VectorSource>(BuildRows()), &join,
                /*build_offset=*/2, /*build_width=*/1);
  auto out = Drain(&op);
  // probe 2 matches build {2} once (x2 probe rows), probe 3 matches twice.
  ASSERT_EQ(out.size(), 4u);
  for (const Row& row : out) {
    EXPECT_EQ(row[0].int64(), row[2].int64());
  }
}

TEST(HashJoinOpTest, ResidualPredicateFilters) {
  PlannedJoin join;
  join.probe_keys.push_back(Col(0, TypeId::kInt64));
  join.build_keys.push_back(Col(2, TypeId::kInt64));
  // Residual: probe payload must exceed 20 (keeps only {2,21,2}).
  join.residual.push_back(IntCmp(CompareOp::kGt, 1, 20));
  HashJoinOp op(std::make_unique<VectorSource>(ProbeRows()),
                std::make_unique<VectorSource>(BuildRows()), &join, 2, 1);
  auto out = Drain(&op);
  ASSERT_EQ(out.size(), 3u);  // (2,21) and (3,30) twice
  for (const Row& row : out) EXPECT_GT(row[1].int64(), 20);
}

TEST(HashJoinOpTest, NullKeysNeverMatch) {
  std::vector<Row> probe = ProbeRows();
  probe.push_back({Value::Null(TypeId::kInt64), Value::Int64(99), Value()});
  std::vector<Row> build = BuildRows();
  build.push_back({Value(), Value(), Value::Null(TypeId::kInt64)});
  PlannedJoin join;
  join.probe_keys.push_back(Col(0, TypeId::kInt64));
  join.build_keys.push_back(Col(2, TypeId::kInt64));
  HashJoinOp op(std::make_unique<VectorSource>(probe),
                std::make_unique<VectorSource>(build), &join, 2, 1);
  auto out = Drain(&op);
  EXPECT_EQ(out.size(), 4u);  // unchanged: NULLs joined nothing
}

TEST(HashJoinOpTest, CrossJoinViaEmptyKeys) {
  PlannedJoin join;  // no keys: single-bucket cross product
  HashJoinOp op(std::make_unique<VectorSource>(ProbeRows()),
                std::make_unique<VectorSource>(BuildRows()), &join, 2, 1);
  auto out = Drain(&op);
  EXPECT_EQ(out.size(), 16u);  // 4 x 4
}

TEST(SemiJoinOpTest, SemiAndAnti) {
  // Outer rows (width 2), inner rows are single-column key sets.
  std::vector<Row> outer = IntRows({{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  std::vector<Row> inner = {{Value::Int64(2)}, {Value::Int64(4)},
                            {Value::Int64(4)}};
  PlannedSemiJoin semi;
  semi.outer_keys.push_back(Col(0, TypeId::kInt64));
  semi.inner_keys.push_back(Col(0, TypeId::kInt64));
  SemiJoinOp op(std::make_unique<VectorSource>(outer),
                std::make_unique<VectorSource>(inner), &semi);
  auto out = Drain(&op);
  ASSERT_EQ(out.size(), 2u);  // 2 and 4, each once (semi join, not inner)
  EXPECT_EQ(out[0][0].int64(), 2);
  EXPECT_EQ(out[1][0].int64(), 4);

  PlannedSemiJoin anti;
  anti.anti = true;
  anti.outer_keys.push_back(Col(0, TypeId::kInt64));
  anti.inner_keys.push_back(Col(0, TypeId::kInt64));
  SemiJoinOp anti_op(std::make_unique<VectorSource>(outer),
                     std::make_unique<VectorSource>(inner), &anti);
  auto anti_out = Drain(&anti_op);
  ASSERT_EQ(anti_out.size(), 2u);  // 1 and 3
  EXPECT_EQ(anti_out[0][0].int64(), 1);
  EXPECT_EQ(anti_out[1][0].int64(), 3);
}

}  // namespace
}  // namespace nodb
