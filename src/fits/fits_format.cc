#include "fits/fits_format.h"

#include <cstring>

#include "util/str_conv.h"

namespace nodb {

void PutBigEndian64(char* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
}

uint64_t GetBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

void PutBigEndian32(char* out, uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
}

uint32_t GetBigEndian32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

Schema FitsTableInfo::ToSchema() const {
  Schema schema;
  for (const FitsColumn& c : columns) {
    schema.AddColumn({c.name, c.type});
  }
  return schema;
}

namespace {

/// Extracts the value part of a "KEY     = value / comment" card.
std::string CardValue(std::string_view card) {
  size_t eq = card.find('=');
  if (eq == std::string_view::npos) return "";
  std::string_view rest = card.substr(eq + 1);
  size_t slash = rest.find('/');
  if (slash != std::string_view::npos) rest = rest.substr(0, slash);
  // Trim spaces and quotes.
  size_t b = rest.find_first_not_of(" '");
  size_t e = rest.find_last_not_of(" '");
  if (b == std::string_view::npos) return "";
  return std::string(rest.substr(b, e - b + 1));
}

Result<FitsColumn> ColumnFromForm(const std::string& form) {
  FitsColumn col;
  if (form.empty()) return Status::Corruption("empty TFORM");
  char code = form.back();
  col.form = code;
  switch (code) {
    case 'K':
      col.type = TypeId::kInt64;
      col.width = 8;
      break;
    case 'D':
      col.type = TypeId::kDouble;
      col.width = 8;
      break;
    case 'E':
      col.type = TypeId::kDouble;  // float32 widened on read
      col.width = 4;
      break;
    case 'J':
      col.type = TypeId::kDate;  // our writer uses J for dates
      col.width = 4;
      break;
    case 'L':
      col.type = TypeId::kBool;
      col.width = 1;
      break;
    case 'A': {
      col.type = TypeId::kString;
      if (form.size() < 2) {
        col.width = 1;
      } else {
        NODB_ASSIGN_OR_RETURN(int64_t n,
                              ParseInt64(form.substr(0, form.size() - 1)));
        col.width = static_cast<uint32_t>(n);
      }
      break;
    }
    default:
      return Status::Unimplemented("unsupported TFORM '" + form + "'");
  }
  return col;
}

}  // namespace

Result<FitsTableInfo> ParseFitsHeader(const RandomAccessFile* file) {
  FitsTableInfo info;
  std::vector<char> block(kFitsBlockSize);
  uint64_t offset = 0;
  bool saw_end = false;
  int tfields = 0;
  int64_t naxis1 = 0, naxis2 = 0;
  std::vector<std::string> ttype;
  std::vector<std::string> tform;

  while (!saw_end) {
    NODB_ASSIGN_OR_RETURN(uint64_t n,
                          file->Read(offset, kFitsBlockSize, block.data()));
    if (n != kFitsBlockSize) {
      return Status::Corruption("FITS header truncated");
    }
    for (int c = 0; c < static_cast<int>(kFitsBlockSize / kFitsCardSize); ++c) {
      std::string_view card(block.data() + c * kFitsCardSize, kFitsCardSize);
      std::string key(card.substr(0, 8));
      // Trim trailing spaces of the key.
      size_t key_end = key.find_last_not_of(' ');
      key = key_end == std::string::npos ? "" : key.substr(0, key_end + 1);
      if (key == "END") {
        saw_end = true;
        break;
      }
      std::string value = CardValue(card);
      if (key == "NAXIS1") {
        NODB_ASSIGN_OR_RETURN(naxis1, ParseInt64(value));
      } else if (key == "NAXIS2") {
        NODB_ASSIGN_OR_RETURN(naxis2, ParseInt64(value));
      } else if (key == "TFIELDS") {
        NODB_ASSIGN_OR_RETURN(int64_t tf, ParseInt64(value));
        tfields = static_cast<int>(tf);
        ttype.resize(tfields);
        tform.resize(tfields);
      } else if (key.rfind("TTYPE", 0) == 0) {
        NODB_ASSIGN_OR_RETURN(int64_t idx, ParseInt64(key.substr(5)));
        if (idx >= 1 && idx <= static_cast<int64_t>(ttype.size())) {
          ttype[idx - 1] = value;
        }
      } else if (key.rfind("TFORM", 0) == 0) {
        NODB_ASSIGN_OR_RETURN(int64_t idx, ParseInt64(key.substr(5)));
        if (idx >= 1 && idx <= static_cast<int64_t>(tform.size())) {
          tform[idx - 1] = value;
        }
      }
    }
    offset += kFitsBlockSize;
  }

  if (tfields == 0) return Status::Corruption("FITS header has no TFIELDS");
  uint32_t row_offset = 0;
  for (int i = 0; i < tfields; ++i) {
    NODB_ASSIGN_OR_RETURN(FitsColumn col, ColumnFromForm(tform[i]));
    col.name = ttype[i].empty() ? "col" + std::to_string(i + 1) : ttype[i];
    col.offset = row_offset;
    row_offset += col.width;
    info.columns.push_back(std::move(col));
  }
  if (naxis1 != row_offset) {
    return Status::Corruption("FITS NAXIS1 does not match column widths");
  }
  info.row_bytes = static_cast<uint64_t>(naxis1);
  info.num_rows = static_cast<uint64_t>(naxis2);
  info.data_start = offset;
  return info;
}

Value DecodeFitsField(const FitsColumn& column, const char* bytes) {
  switch (column.form) {
    case 'K':
      return Value::Int64(static_cast<int64_t>(GetBigEndian64(bytes)));
    case 'D': {
      uint64_t bits = GetBigEndian64(bytes);
      double d;
      memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case 'E': {
      uint32_t bits = GetBigEndian32(bytes);
      float f;
      memcpy(&f, &bits, 4);
      return Value::Double(static_cast<double>(f));
    }
    case 'J':
      return Value::Date(static_cast<int32_t>(GetBigEndian32(bytes)));
    case 'L':
      return Value::Bool(bytes[0] == 'T');
    case 'A': {
      std::string_view s(bytes, column.width);
      size_t end = s.find_last_not_of(' ');
      if (end == std::string_view::npos) return Value::String(std::string());
      return Value::String(s.substr(0, end + 1));
    }
    default:
      return Value::Null(column.type);
  }
}

}  // namespace nodb
