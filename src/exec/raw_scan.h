#ifndef NODB_EXEC_RAW_SCAN_H_
#define NODB_EXEC_RAW_SCAN_H_

#include <memory>
#include <vector>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"
#include "raw/raw_source.h"

namespace nodb {

/// Feature toggles for the raw scan; each maps to one of the paper's
/// techniques so benchmarks can isolate its effect.
struct InSituOptions {
  /// §4.2 — consult/populate attribute positions in the positional map.
  /// (Row-start "spine" collection is governed by the table having a
  /// PositionalMap at all; the cache-only variant keeps the spine as the
  /// paper's "minimal map for end of lines".)
  bool use_positional_map = true;
  /// §4.3 — consult/populate the binary value cache.
  bool use_cache = true;
  /// §4.4 — feed adaptive statistics while scanning.
  bool collect_stats = true;
  /// §4.1 — stop tokenizing a tuple at the last attribute the query needs.
  bool selective_tokenizing = true;
  /// §4.1 — two-phase conversion: WHERE attributes for every tuple, other
  /// attributes only for qualifying tuples.
  bool selective_parsing = true;
  /// §4.1 — output tuples carry only needed attributes; when false, every
  /// attribute is parsed and materialized (external-files behaviour).
  bool selective_tuple_formation = true;
  /// §4.2 Adaptive Behavior — re-index the full attribute combination when
  /// a query's attributes are scattered across chunks. Off by default (see
  /// EngineConfig::index_combinations).
  bool index_combinations = false;
  /// §4.2 Map Population — record positions of every attribute crossed
  /// while tokenizing, not only the requested ones ("if a query requires
  /// attributes in positions 10 and 15, all positions from 1 to 15 may be
  /// kept"). This is what makes the second query dramatically faster.
  bool index_intermediates = true;
};

/// The §4.1 attribute decomposition of one scan, shared by the serial and
/// parallel raw-scan operators (one implementation, so the two can never
/// drift apart on which attributes are tokenized, parsed early, parsed
/// late, or materialized).
struct ScanAttrPlan {
  std::vector<int> output_attrs;  // materialized into the output row
  std::vector<int> phase1_attrs;  // parsed for every tuple (WHERE)
  std::vector<int> phase2_attrs;  // parsed for qualifying tuples
  int max_token_attr = 0;         // last attribute tokenizing must reach
};

ScanAttrPlan ComputeScanAttrPlan(const PlannedScan& scan, int ncols,
                                 const InSituOptions& opts);

/// The NoDB access method (§4) over *any* registered RawSourceAdapter: scans
/// the raw file directly, using the positional map to jump (close) to field
/// positions, the cache to skip file access entirely, selective
/// tokenizing/parsing/tuple formation to minimize CPU work, and populating
/// all three structures plus statistics as side effects — so the next query
/// runs faster. All of that machinery lives here, format-independent; the
/// adapter contributes only record iteration and field tokenize/parse hooks,
/// which is how CSV, FITS and JSON Lines share one scan operator (and how a
/// new format inherits the whole adaptive stack).
class RawScanOp final : public Operator {
 public:
  /// `runtime` (with a non-null adapter), `scan` must outlive the operator.
  /// Output rows are `working_width` wide with this table's columns at
  /// scan->table.offset.
  /// `control` (optional) is polled once per stripe: a cancelled or
  /// deadline-expired query stops mid-file with a typed error, and the
  /// destructor releases the scan epoch like any other abandoned pipeline.
  RawScanOp(TableRuntime* runtime, const PlannedScan* scan, int working_width,
            InSituOptions options, ExecControlPtr control = nullptr);

  /// Ends the scan epoch if Close never ran (pipelines are abandoned
  /// without the Close protocol on error paths; a leaked epoch would keep
  /// its chunks eviction-protected forever).
  ~RawScanOp() override;

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

  /// Stripe size used when the table has neither positional map nor cache
  /// (kept identical to PositionalMap's default so cache keys line up).
  static constexpr int kDefaultStripe = 4096;

 private:
  /// Processes the next stripe of tuples into the out_rows_ recycler. Sets
  /// eof_ when the source is exhausted.
  Status LoadStripe();
  /// Serves a stripe entirely from cache snapshots (no file access).
  /// `cols[a]` must be non-null for every output attribute.
  Status ServeFromCache(const std::vector<ColumnCache::Column>& cols, int n);
  /// Total tuple count if already known: a completed scan's positional map,
  /// or a fixed-stride adapter's header. 0 when unknown.
  uint64_t KnownTotalTuples() const;
  /// Next recycled output slot (storage reused across stripes); the caller
  /// fills it and then claims it with ++out_size_.
  Row& OutSlot() {
    if (out_size_ == out_rows_.size()) out_rows_.emplace_back();
    return out_rows_[out_size_];
  }

  TableRuntime* runtime_;
  const PlannedScan* scan_;
  int working_width_;
  InSituOptions opts_;
  ExecControlPtr control_;
  uint64_t epoch_token_ = 0;  // BeginEpoch token, returned in Close

  const RawSourceAdapter* adapter_ = nullptr;
  RawTraits traits_;
  int ncols_ = 0;
  int tuples_per_stripe_ = kDefaultStripe;
  std::vector<int> phase1_attrs_;  // parsed for every tuple
  std::vector<int> phase2_attrs_;  // parsed for qualifying tuples
  std::vector<int> output_attrs_;  // materialized into the output row
  int max_token_attr_ = 0;

  std::unique_ptr<RecordCursor> cursor_;
  uint64_t next_tuple_ = 0;
  bool need_seek_ = false;
  uint64_t seek_index_ = 0;
  uint64_t seek_offset_ = 0;
  /// False when a stripe served without file access deferred resolving the
  /// next stripe's seek offset (a fully promoted table never needs it; the
  /// file path resolves it on demand from the spine).
  bool seek_resolved_ = true;
  bool eof_ = false;

  // Qualifying rows of the current stripe. A recycler, not a plain vector:
  // out_size_ marks the live prefix and slots keep their heap storage
  // across stripes, so the steady-state scan does no per-tuple allocation —
  // rows leave via std::swap with the (equally recycled) caller batch.
  std::vector<Row> out_rows_;
  size_t out_size_ = 0;
  size_t out_idx_ = 0;

  // Per-stripe scratch (members to avoid reallocation).
  std::vector<int> temp_attrs_;          // attrs tracked per tuple, sorted
  std::vector<int> slot_of_;             // attr -> slot in temp_attrs_, -1
  std::vector<uint32_t> tuple_pos_;      // per-tuple positions per slot
  PmapFragment frag_;                    // staged spine + positions
  std::vector<uint32_t> frag_pos_;       // per-tuple scratch, frag attr order
};

}  // namespace nodb

#endif  // NODB_EXEC_RAW_SCAN_H_
