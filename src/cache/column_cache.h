#ifndef NODB_CACHE_COLUMN_CACHE_H_
#define NODB_CACHE_COLUMN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace nodb {

/// Adaptive binary-value cache (the paper's §4.3). Holds already-converted
/// attribute values per (attribute, tuple-stripe) so future queries skip both
/// the raw-file access and the text-to-binary conversion. Populated on the
/// fly during scans — only with attributes the current query actually parsed
/// ("caching does not force additional data to be parsed").
///
/// Eviction is LRU *within* a conversion-cost class, and cheap-to-convert
/// classes are evicted first: "the PostgresRaw cache always gives priority to
/// attributes more costly to convert" (ASCII numerics cost more to re-create
/// than strings, and are also smaller in binary form).
///
/// Thread-safe: one table may be scanned by many queries at once. Entries
/// are handed out as shared_ptr snapshots, so a reader keeps its column
/// alive even if a concurrent Put/eviction drops it from the cache;
/// population stays race-free because each chunk is written by exactly one
/// thread (the scan that parsed it — serial scans directly, parallel scans
/// through their single merge thread; see README "Threading model").
class ColumnCache {
 public:
  struct Options {
    uint64_t budget_bytes = UINT64_MAX;
    int tuples_per_chunk = 4096;  // must match the scan's stripe size
  };

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    /// Chunks dropped by ReleaseAttr (column promotion superseding the
    /// cached copies — distinct from budget-pressure evictions).
    uint64_t released = 0;
  };

  /// Per-attribute slice of the hit/miss counters, for the promotion
  /// policy's cost-to-serve accounting.
  struct AttrCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// One cached column chunk, shared with readers.
  using Column = std::shared_ptr<const std::vector<Value>>;

  /// `types[attr]` drives the eviction priority of each attribute.
  ColumnCache(std::vector<TypeId> types, Options options);

  ColumnCache(const ColumnCache&) = delete;
  ColumnCache& operator=(const ColumnCache&) = delete;

  /// Cached values of `attr` for `stripe` (one Value per tuple in the
  /// stripe), or nullptr. The snapshot stays valid regardless of concurrent
  /// Put/Clear/eviction.
  Column Get(uint64_t stripe, int attr);

  /// True without touching recency (used when planning stripe access).
  bool Contains(uint64_t stripe, int attr) const;

  /// Inserts (or replaces) the cached values for (stripe, attr).
  void Put(uint64_t stripe, int attr, std::vector<Value> values);

  /// Drops every cached chunk of `attr`, whatever its stripe — called when
  /// the column is promoted to the columnar store, which fully supersedes
  /// the cached copies (keeping both would charge the shared byte budget
  /// twice for the same values). Returns the bytes freed; counted under
  /// Counters::released, not evictions.
  uint64_t ReleaseAttr(int attr);

  /// Reserves `bytes` of this cache's budget for an external co-tenant (the
  /// promoted column store, which shares the budget): eviction enforces
  /// `memory_bytes + reserved <= budget`. Raising the reservation evicts
  /// immediately; UINT64_MAX-budget caches ignore it.
  void SetReservedBytes(uint64_t bytes);
  uint64_t reserved_bytes() const;

  uint64_t memory_bytes() const;
  uint64_t budget_bytes() const { return options_.budget_bytes; }
  int tuples_per_chunk() const { return options_.tuples_per_chunk; }
  /// Fraction of the budget in use, in [0, 1] (1 if budget is unlimited
  /// and anything is cached).
  double utilization() const;
  /// Snapshot of the counters (copy: the cache may be mutated concurrently).
  Counters counters() const;
  /// Per-attribute hit/miss snapshot.
  AttrCounters attr_counters(int attr) const;

  /// Bytes a chunk of `values` occupies under this cache's accounting
  /// (public so the promoted column store charges the shared budget with
  /// the same formula).
  static uint64_t BytesOf(const std::vector<Value>& values, TypeId type);

  /// One cached chunk as handed out by ExportState. `values` is a shared
  /// snapshot (no copy): it stays valid even if a concurrent eviction drops
  /// the entry from the cache.
  struct ExportedChunk {
    uint64_t stripe = 0;
    int attr = 0;
    Column values;
  };

  /// Consistent view of every resident chunk, ordered by (stripe, attr),
  /// taken under the internal lock in one critical section. Cheap: only
  /// shared_ptrs are copied. Does not touch recency.
  std::vector<ExportedChunk> ExportState() const;

  void Clear();

 private:
  struct Entry;
  /// Cache key: stripe in the high bits, attribute in the low bits.
  static uint64_t KeyOf(uint64_t stripe, int attr) {
    return (stripe << 16) | static_cast<uint64_t>(attr);
  }

  struct Entry {
    Column values;
    uint64_t bytes = 0;
    int cost_class = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  void EnforceBudget();  // mu_ held
  /// Budget available to cached chunks after the external reservation.
  uint64_t EffectiveBudget() const;  // mu_ held

  std::vector<TypeId> types_;
  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  /// One LRU list per conversion-cost class; eviction drains the lowest
  /// non-empty class first, from its least-recently-used tail.
  std::vector<std::list<uint64_t>> lru_by_class_;
  uint64_t memory_bytes_ = 0;
  uint64_t reserved_bytes_ = 0;
  Counters counters_;
  /// Per-attribute hit/miss tallies (indexed by attr, sized like types_).
  std::vector<AttrCounters> attr_counters_;
};

}  // namespace nodb

#endif  // NODB_CACHE_COLUMN_CACHE_H_
