#ifndef NODB_IO_FILE_H_
#define NODB_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

class InflateFile;

/// Read-only random access byte source. The base class is polymorphic so
/// layered sources (the gzip decompression layer in io/inflate_file.h, and
/// eventually remote/range readers) can substitute for a plain file behind
/// every adapter and scan. Implementations must be thread-safe: concurrent
/// Read calls may come from parallel scan workers sharing one handle.
///
/// `size()`/`bytes_read()` are in the handle's *presented* byte space — for
/// a plain file that is the on-disk bytes, for a decompression layer the
/// decompressed stream (compressed accounting lives on the inner handle).
class RandomAccessFile {
 public:
  /// Opens `path` for reading via POSIX pread(2).
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  virtual ~RandomAccessFile() = default;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads up to `length` bytes at `offset` into `scratch`; returns the bytes
  /// actually read (short only at EOF).
  virtual Result<uint64_t> Read(uint64_t offset, uint64_t length,
                                char* scratch) const = 0;

  /// Whether concurrent random reads at unrelated offsets are cheap. False
  /// for a compressed stream whose checkpoint index is not built yet (every
  /// random read would re-inflate from byte 0); the parallel scan planner
  /// then runs single-morsel and lets the sequential pass build the index.
  virtual bool SupportsConcurrentReads() const { return true; }

  /// Offsets where splitting a scan is cheapest (checkpoint boundaries for
  /// a compressed stream). Empty = any offset is as good as any other.
  virtual std::vector<uint64_t> RecommendedSplitOffsets() const { return {}; }

  /// Downcast hook for layers that need the decompression state (snapshot
  /// writer persists the checkpoint index, STATS surfaces its counters).
  virtual const InflateFile* AsInflateFile() const { return nullptr; }

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Total bytes read through this handle (I/O accounting for benches).
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 protected:
  RandomAccessFile(uint64_t size, std::string path)
      : size_(size), path_(std::move(path)) {}

  void CountRead(uint64_t n) const {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t size_;

 private:
  std::string path_;
  mutable std::atomic<uint64_t> bytes_read_{0};
};

/// Buffered append-only writer (used by data generators, spill files and the
/// storage engine's bulk paths).
class WritableFile {
 public:
  /// Creates/truncates `path` for writing.
  static Result<std::unique_ptr<WritableFile>> Create(const std::string& path);

  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(std::string_view data);
  Status Flush();
  /// Flushes user-space buffers and fsyncs the file to stable storage —
  /// the durability half of a write-temp-then-rename protocol (snapshot
  /// writer): after Sync returns OK, a crash cannot leave the file with
  /// partial content behind a completed rename.
  Status Sync();
  /// Flushes and closes; further writes are invalid. Idempotent.
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WritableFile(FILE* f) : file_(f) {}

  FILE* file_;
  uint64_t bytes_written_ = 0;
};

}  // namespace nodb

#endif  // NODB_IO_FILE_H_
