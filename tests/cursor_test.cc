#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "csv/writer.h"
#include "engine/engines.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace {

/// Cursor-semantics suite for the streaming Query API: batch boundaries,
/// early Close under LIMIT, behaviour after exhaustion/Close, and a
/// differential check that cursor-drained rows equal Execute's materialized
/// result across every engine variant.

Schema TwoColSchema() {
  return Schema{{"id", TypeId::kInt64}, {"val", TypeId::kInt64}};
}

/// Writes `nrows` rows of (i, i*10) to `path`.
void WriteSequentialCsv(const std::string& path, int nrows) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  CsvWriter writer(out->get(), CsvDialect{});
  for (int i = 0; i < nrows; ++i) {
    ASSERT_TRUE(
        writer.WriteRow({Value::Int64(i), Value::Int64(i * 10)}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

/// An engine with a small, known batch size so boundary cases stay cheap.
std::unique_ptr<Database> SmallBatchEngine(size_t batch_size) {
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.batch_size = batch_size;
  return std::make_unique<Database>(config);
}

class CursorBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(CursorBoundaryTest, RowCountsAroundTheBatchSize) {
  constexpr size_t kBatch = 4;
  const int nrows = GetParam();  // 0, 1, kBatch, kBatch + 1
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, nrows);

  auto db = SmallBatchEngine(kBatch);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());
  auto cursor = db->Query("SELECT id, val FROM t");
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  EXPECT_EQ(cursor->batch_size(), kBatch);

  RowBatch batch = cursor->MakeBatch();
  ASSERT_EQ(batch.capacity(), kBatch);
  int seen = 0;
  while (true) {
    auto n = cursor->Next(&batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    // Every mid-stream batch is full; only the final one may be partial.
    if (seen + static_cast<int>(*n) < nrows) {
      EXPECT_EQ(*n, kBatch);
    }
    for (size_t i = 0; i < *n; ++i) {
      EXPECT_EQ(batch[i][0].int64(), seen);
      EXPECT_EQ(batch[i][1].int64(), seen * 10);
      ++seen;
    }
  }
  EXPECT_EQ(seen, nrows);
  EXPECT_TRUE(cursor->closed());  // exhaustion released the pipeline
}

INSTANTIATE_TEST_SUITE_P(RowCounts, CursorBoundaryTest,
                         ::testing::Values(0, 1, 4, 5));

TEST(CursorTest, NextAfterExhaustionKeepsReturningZero) {
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, 3);
  auto db = SmallBatchEngine(4);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());
  auto cursor = db->Query("SELECT id FROM t");
  ASSERT_TRUE(cursor.ok());
  RowBatch batch = cursor->MakeBatch();
  auto n = cursor->Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    n = cursor->Next(&batch);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    EXPECT_TRUE(batch.empty());
  }
  // Close after exhaustion is fine and idempotent.
  EXPECT_TRUE(cursor->Close().ok());
  EXPECT_TRUE(cursor->Close().ok());
}

TEST(CursorTest, SchemaAndPlanSurviveClose) {
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, 2);
  auto db = SmallBatchEngine(4);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());
  auto cursor = db->Query("SELECT id, val FROM t");
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->Close().ok());
  EXPECT_EQ(cursor->schema().num_columns(), 2);
  EXPECT_EQ(cursor->schema().column(0).name, "id");
  EXPECT_FALSE(cursor->plan_text().empty());
}

TEST(CursorTest, NextAfterEarlyCloseIsAnError) {
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, 100);
  auto db = SmallBatchEngine(4);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());
  auto cursor = db->Query("SELECT id FROM t");
  ASSERT_TRUE(cursor.ok());
  RowBatch batch = cursor->MakeBatch();
  auto n = cursor->Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  ASSERT_TRUE(cursor->Close().ok());
  EXPECT_TRUE(cursor->closed());
  n = cursor->Next(&batch);
  EXPECT_FALSE(n.ok());  // early Close is final; this is not exhaustion
}

TEST(CursorTest, EarlyCloseUnderLimitStopsReadingTheFile) {
  // A few MB of raw CSV; a LIMIT query satisfied from the first stripes
  // must leave most of the file unread, and Close must not read more.
  TempDir dir;
  MicroDataSpec spec;
  spec.rows = 120000;
  spec.cols = 6;
  spec.seed = 11;
  std::string csv = dir.File("big.csv");
  ASSERT_TRUE(GenerateWideCsv(csv, spec).ok());

  auto db = SmallBatchEngine(RowBatch::kDefaultCapacity);
  ASSERT_TRUE(db->RegisterCsv("t", csv, MicroSchema(spec)).ok());
  const uint64_t file_size = db->runtime("t")->adapter->file()->size();
  ASSERT_GT(file_size, 2u << 20);  // needs to dwarf the 1 MiB scan buffer

  auto cursor = db->Query("SELECT a1 FROM t LIMIT 10");
  ASSERT_TRUE(cursor.ok());
  RowBatch batch = cursor->MakeBatch();
  size_t seen = 0;
  while (true) {
    auto n = cursor->Next(&batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    seen += *n;
  }
  EXPECT_EQ(seen, 10u);
  ASSERT_TRUE(cursor->Close().ok());
  const uint64_t read_after_limit = db->runtime("t")->adapter->file()->bytes_read();
  EXPECT_LT(read_after_limit, file_size / 2)
      << "LIMIT-satisfied cursor should abandon the scan early";

  // Abandoning a full scan mid-way reads no further either.
  auto scan = db->Query("SELECT a2 FROM t");
  ASSERT_TRUE(scan.ok());
  auto n = scan->Next(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_GT(*n, 0u);
  const uint64_t before_close = db->runtime("t")->adapter->file()->bytes_read();
  ASSERT_TRUE(scan->Close().ok());
  EXPECT_EQ(db->runtime("t")->adapter->file()->bytes_read(), before_close);
  EXPECT_LT(before_close, file_size);
}

TEST(CursorTest, MoveAssignmentClosesTheOverwrittenCursor) {
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, 20);
  auto db = SmallBatchEngine(4);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());

  auto first = db->Query("SELECT id FROM t");
  ASSERT_TRUE(first.ok());
  RowBatch batch = first->MakeBatch();
  ASSERT_TRUE(first->Next(&batch).ok());  // open + partially drain

  auto second = db->Query("SELECT val FROM t");
  ASSERT_TRUE(second.ok());
  *first = std::move(*second);  // must close the open first pipeline
  size_t seen = 0;
  while (true) {
    auto n = first->Next(&batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    seen += *n;
  }
  EXPECT_EQ(seen, 20u);
}

TEST(CursorTest, WriteCsvRoundTrips) {
  TempDir dir;
  std::string csv = dir.File("t.csv");
  WriteSequentialCsv(csv, 3);
  auto db = SmallBatchEngine(4);
  ASSERT_TRUE(db->RegisterCsv("t", csv, TwoColSchema()).ok());
  auto result = db->Execute("SELECT id, val FROM t WHERE id >= 1");
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  ASSERT_TRUE(result->WriteCsv(out).ok());
  EXPECT_EQ(out.str(),
            "id,val\n"
            "1,10\n"
            "2,20\n");
}

TEST(CursorTest, CursorAgreesWithExecuteAcrossAllEngines) {
  // Differential: for every engine variant, draining Query() batch-by-batch
  // yields exactly the rows Execute() materializes.
  TempDir dir;
  std::string csv = dir.File("t.csv");
  auto out = WritableFile::Create(csv);
  ASSERT_TRUE(out.ok());
  CsvWriter writer(out->get(), CsvDialect{});
  const char* words[] = {"ash", "birch", "cedar"};
  for (int i = 0; i < 537; ++i) {  // not a multiple of any batch size
    ASSERT_TRUE(writer
                    .WriteRow({Value::Int64(i % 21),
                               Value::String(words[i % 3]),
                               Value::Double(i * 0.25)})
                    .ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
  Schema schema{{"k", TypeId::kInt64},
                {"w", TypeId::kString},
                {"x", TypeId::kDouble}};

  const char* queries[] = {
      "SELECT k, w, x FROM t",
      "SELECT k, x FROM t WHERE x < 50.0 AND w = 'ash'",
      "SELECT w, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY w",
      "SELECT k, x FROM t ORDER BY x DESC, k LIMIT 13",
  };

  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
        SystemUnderTest::kPostgresRawC,
        SystemUnderTest::kPostgresRawBaseline,
        SystemUnderTest::kExternalFiles, SystemUnderTest::kPostgreSQL,
        SystemUnderTest::kDbmsX, SystemUnderTest::kMySQL}) {
    auto db = MakeEngine(sut);
    if (IsInSituSystem(sut)) {
      ASSERT_TRUE(db->RegisterCsv("t", csv, schema).ok());
    } else {
      ASSERT_TRUE(db->LoadCsv("t", csv, schema).ok());
    }
    for (const char* sql : queries) {
      auto executed = db->Execute(sql);
      ASSERT_TRUE(executed.ok())
          << SystemUnderTestName(sut) << " failed on: " << sql;

      auto cursor = db->Query(sql);
      ASSERT_TRUE(cursor.ok())
          << SystemUnderTestName(sut) << " failed on: " << sql;
      QueryResult drained;
      drained.schema = cursor->schema();
      RowBatch batch = cursor->MakeBatch();
      while (true) {
        auto n = cursor->Next(&batch);
        ASSERT_TRUE(n.ok()) << n.status();
        if (*n == 0) break;
        for (size_t i = 0; i < *n; ++i) {
          drained.rows.push_back(batch[i]);
        }
      }
      // ORDER BY queries must match positionally; others as multisets.
      bool ordered = std::string(sql).find("ORDER BY") != std::string::npos;
      EXPECT_EQ(drained.Canonical(!ordered), executed->Canonical(!ordered))
          << SystemUnderTestName(sut) << " cursor vs Execute disagree on: "
          << sql;
    }
  }
}

}  // namespace
}  // namespace nodb
