// Raw-source adapter comparison: the same generated table scanned in situ
// as CSV and as JSON Lines through the shared RawScanOp path. Both formats
// go through Database::Open (format sniffed from the file), both inherit
// the positional map, cache and statistics from the engine, and the table
// reports cold vs warm times next to the adaptive-structure hit counters —
// making the warm-run positional-map and cache hits directly observable
// per format. The contrast mirrors the paper's CSV-vs-FITS discussion:
// formats differ in tokenizing cost, the adaptive machinery is shared.
//
//   ./bench_micro_adapter [--scale=F] [--seed=N]

#include <cstdio>

#include "common.h"
#include "json/jsonl_writer.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;

  std::string csv = DataDir()->File("adapter_micro.csv");
  std::string jsonl = DataDir()->File("adapter_micro.jsonl");
  if (!GenerateWideCsv(csv, spec).ok() ||
      !GenerateWideJsonl(jsonl, spec).ok()) {
    fprintf(stderr, "data generation failed\n");
    return 1;
  }

  PrintBanner("Raw-source adapters (CSV vs JSON Lines)",
              "not in the paper — NoDB's adaptive structures are "
              "format-independent; a second query must be fast regardless "
              "of how expensive the format's tokenizing is");
  printf("data: %llu rows x %d cols, same values in both files\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols);

  // The paper's micro shape: selective scan touching 2 of 5 attributes.
  const std::string sql = "SELECT a2 FROM t WHERE a4 >= 0";

  // PM+C shows the cache regime (warm scans never touch the file); the
  // PM-only variant forces warm scans back through the positional map, so
  // both adaptive structures' hit counters are visible per format.
  const struct {
    SystemUnderTest sut;
    const char* label;
  } kVariants[] = {
      {SystemUnderTest::kPostgresRawPMC, "PM+C"},
      {SystemUnderTest::kPostgresRawPM, "PM"},
  };

  TextTable table({"format", "engine", "cold (s)", "warm (s)", "speedup",
                   "pm hits", "cache hits", "pm MiB", "cache MiB"});
  for (const std::string& path : {csv, jsonl}) {
    for (const auto& variant : kVariants) {
      auto db = MakeEngine(variant.sut);
      OpenOptions options;
      options.schema = MicroSchema(spec);
      Status s = db->Open("t", path, options);
      if (!s.ok()) {
        fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      TableRuntime* rt = db->runtime("t");

      double cold = RunQuery(db.get(), sql);
      double warm = RunQuery(db.get(), sql);
      for (int run = 0; run < 4; ++run) {
        double t = RunQuery(db.get(), sql);
        if (t < warm) warm = t;
      }

      const auto& pm_counters = rt->pmap->counters();
      std::vector<TableInfo> tables = db->ListTables();
      table.AddRow(
          {std::string(rt->adapter->format_name()), variant.label, Fmt(cold),
           Fmt(warm), Fmt(cold / warm, 1) + "x",
           std::to_string(pm_counters.exact_hits),
           rt->cache != nullptr ? std::to_string(rt->cache->counters().hits)
                                : "-",
           Fmt(tables[0].pmap_bytes / (1024.0 * 1024.0), 1),
           Fmt(tables[0].cache_bytes / (1024.0 * 1024.0), 1)});
    }
  }
  table.Print();
  printf(
      "\nBoth adapters warm up through the same positional-map/cache path;\n"
      "JSON Lines pays more tokenizing per cold record (keys, quoting) but\n"
      "converges to the same cached regime.\n");
  return 0;
}
