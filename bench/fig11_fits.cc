// Figure 11 — "PostgresRaw in FITS files": a sequence of MIN/MAX/AVG
// aggregations over float columns of a FITS binary table, comparing a
// CFITSIO-style procedural C program against PostgresRaw's SQL interface.
// Paper's shape: CFITSIO is near-constant per query (full re-scan each
// time); PostgresRaw pays the first query, then drops well below once its
// cache holds the touched columns; cumulative time crosses within ~10
// queries.

#include "common.h"
#include "fits/cfitsio_like.h"
#include "fits/fits_writer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// The handwritten "custom C program" loop CFITSIO users write: full column
/// read + manual aggregate.
double CfitsioQuery(const char* path, int colnum, int mode /*0=min,1=max,2=avg*/) {
  Stopwatch timer;
  fitsfile* f = nullptr;
  if (fits_open_table(&f, path) != kFitsOk) exit(1);
  long long nrows = 0;
  fits_get_num_rows(f, &nrows);
  std::vector<double> column(nrows);
  if (fits_read_col_dbl(f, colnum, 1, nrows, column.data()) != kFitsOk) {
    exit(1);
  }
  volatile double result = 0;
  if (mode == 0) {
    double m = column[0];
    for (double v : column) m = std::min(m, v);
    result = m;
  } else if (mode == 1) {
    double m = column[0];
    for (double v : column) m = std::max(m, v);
    result = m;
  } else {
    double sum = 0;
    for (double v : column) sum += v;
    result = sum / static_cast<double>(nrows);
  }
  (void)result;
  fits_close_file(f);
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 11: FITS binary tables — CFITSIO program vs PostgresRaw",
      "CFITSIO near-constant per query; PostgresRaw drops after Q1 (cache); "
      "data-to-query crossover within ~10 queries.");

  // ~4.3M rows in the paper; scaled down by default. Survey tables are
  // WIDE (SDSS photoObj has hundreds of columns); queries touch a handful.
  // The width is what makes caching pay: a procedural CFITSIO program
  // strides across every (page-sized) row, the cache holds just the used
  // columns.
  const uint64_t rows = static_cast<uint64_t>(300000 * args.scale);
  const int kFillerCols = 36;
  std::string path = DataDir()->File("stars.fits");
  {
    Schema schema{{"flux", TypeId::kDouble},
                  {"mag", TypeId::kDouble},
                  {"ra", TypeId::kDouble},
                  {"dec", TypeId::kDouble}};
    for (int i = 0; i < kFillerCols; ++i) {
      schema.AddColumn({"band_" + std::to_string(i + 1), TypeId::kDouble});
    }
    auto writer = FitsWriter::Create(path, schema, {});
    if (!writer.ok()) return 1;
    Rng rng(args.seed);
    Row row(schema.num_columns());
    for (uint64_t i = 0; i < rows; ++i) {
      row[0] = Value::Double(rng.NextDouble() * 1e4);
      row[1] = Value::Double(10 + rng.NextDouble() * 15);
      row[2] = Value::Double(rng.NextDouble() * 360);
      row[3] = Value::Double(rng.NextDouble() * 180 - 90);
      for (int c = 0; c < kFillerCols; ++c) {
        row[4 + c] = Value::Double(rng.NextDouble());
      }
      if (!(*writer)->Append(row).ok()) return 1;
    }
    if (!(*writer)->Finish().ok()) return 1;
  }

  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  if (!db->RegisterFits("stars", path).ok()) return 1;

  // The paper's workload: MIN/MAX/AVG over float columns.
  struct Q {
    const char* sql;
    int colnum;
    int mode;
  };
  const Q kQueries[] = {
      {"SELECT MIN(flux) FROM stars", 1, 0},
      {"SELECT MAX(flux) FROM stars", 1, 1},
      {"SELECT AVG(flux) FROM stars", 1, 2},
      {"SELECT MIN(mag) FROM stars", 2, 0},
      {"SELECT MAX(mag) FROM stars", 2, 1},
      {"SELECT AVG(mag) FROM stars", 2, 2},
      {"SELECT AVG(flux) FROM stars", 1, 2},
      {"SELECT MIN(ra) FROM stars", 3, 0},
      {"SELECT MAX(dec) FROM stars", 4, 1},
      {"SELECT AVG(mag) FROM stars", 2, 2},
      {"SELECT MAX(flux) FROM stars", 1, 1},
      {"SELECT MIN(mag) FROM stars", 2, 0},
  };

  TextTable table({"query", "CFITSIO(s)", "PostgresRaw(s)", "cum CFITSIO",
                   "cum PostgresRaw"});
  double cum_c = 0, cum_raw = 0;
  int q = 0;
  for (const Q& query : kQueries) {
    ++q;
    double c = CfitsioQuery(path.c_str(), query.colnum, query.mode);
    double r = RunQuery(db.get(), query.sql);
    cum_c += c;
    cum_raw += r;
    table.AddRow({"Q" + std::to_string(q), Fmt(c), Fmt(r), Fmt(cum_c),
                  Fmt(cum_raw)});
  }
  table.Print();
  printf("\nExpected shape: PostgresRaw per-query time collapses once "
         "columns are cached; cumulative PostgresRaw < cumulative CFITSIO "
         "within ~10 queries.\n");
  return 0;
}
