#include "fits/fits_adapter.h"

#include <algorithm>
#include <utility>

#include "io/buffered_reader.h"

namespace nodb {

namespace {

/// Fixed-stride cursor: record index -> file offset is arithmetic, so seeks
/// ignore the spine offset and a short read is container corruption (the
/// header promised num_rows full rows).
class FitsRecordCursor final : public RecordCursor {
 public:
  explicit FitsRecordCursor(const FitsTableInfo* info,
                            const RandomAccessFile* file)
      : info_(info), reader_(file, 1 << 20) {}

  Result<bool> Next(RecordRef* rec) override {
    if (next_index_ >= info_->num_rows) return false;
    const uint64_t base = info_->data_start + next_index_ * info_->row_bytes;
    NODB_ASSIGN_OR_RETURN(std::string_view bytes,
                          reader_.ReadAt(base, info_->row_bytes));
    if (bytes.size() != info_->row_bytes) {
      return Status::Corruption("FITS data truncated");
    }
    rec->offset = base;
    rec->data = bytes;
    ++next_index_;
    return true;
  }

  Status SeekToRecord(uint64_t index, uint64_t offset) override {
    (void)offset;
    next_index_ = index;
    return Status::OK();
  }

 private:
  const FitsTableInfo* info_;
  BufferedReader reader_;
  uint64_t next_index_ = 0;
};

}  // namespace

FitsAdapter::FitsAdapter(std::string path,
                         std::unique_ptr<RandomAccessFile> file,
                         FitsTableInfo info)
    : path_(std::move(path)), file_(std::move(file)), info_(std::move(info)),
      schema_(info_.ToSchema()) {
  traits_.variable_positions = false;
  traits_.fixed_stride = true;
  traits_.backward_tokenize = false;
  traits_.attr0_at_start = true;  // column 0 sits at row offset 0
}

Result<std::unique_ptr<FitsAdapter>> FitsAdapter::Make(
    const std::string& path, std::unique_ptr<RandomAccessFile> file) {
  if (file == nullptr) {
    NODB_ASSIGN_OR_RETURN(file, RandomAccessFile::Open(path));
  }
  NODB_ASSIGN_OR_RETURN(FitsTableInfo info, ParseFitsHeader(file.get()));
  return std::unique_ptr<FitsAdapter>(
      new FitsAdapter(path, std::move(file), std::move(info)));
}

Result<std::unique_ptr<RecordCursor>> FitsAdapter::OpenCursor() const {
  return std::unique_ptr<RecordCursor>(
      std::make_unique<FitsRecordCursor>(&info_, file_.get()));
}

Result<uint64_t> FitsAdapter::FindRecordBoundary(uint64_t offset) const {
  // Fixed stride: round up to the next row start inside the data section;
  // everything past the header's promised last row (block padding included)
  // maps to the common end sentinel.
  const uint64_t data_end =
      info_.data_start + info_.num_rows * info_.row_bytes;
  if (offset <= info_.data_start) return info_.data_start;
  if (offset >= data_end) return data_end;
  const uint64_t rel = offset - info_.data_start;
  const uint64_t row = (rel + info_.row_bytes - 1) / info_.row_bytes;
  return std::min(info_.data_start + row * info_.row_bytes, data_end);
}

uint32_t FitsAdapter::FindForward(const RecordRef& rec, int from_attr,
                                  uint32_t from_pos, int to_attr,
                                  const PositionSink& sink) const {
  (void)rec, (void)from_pos;
  for (int a = from_attr < 0 ? 0 : from_attr; a <= to_attr; ++a) {
    sink.Record(a, info_.columns[a].offset);
  }
  return info_.columns[to_attr].offset;
}

uint32_t FitsAdapter::FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                               uint32_t next_attr_pos) const {
  (void)rec, (void)next_attr_pos;
  return pos + info_.columns[attr].width;
}

Result<Value> FitsAdapter::ParseField(const RecordRef& rec, int attr,
                                      uint32_t pos, uint32_t end) const {
  (void)end;
  return DecodeFitsField(info_.columns[attr], rec.data.data() + pos);
}

namespace {

class FitsAdapterFactory final : public AdapterFactory {
 public:
  std::string_view format_name() const override { return "fits"; }

  double Sniff(const std::string& path, std::string_view head) const override {
    // Every conforming FITS file begins with the "SIMPLE  =" card.
    if (head.substr(0, 9) == "SIMPLE  =") return 1.0;
    if (PathHasExtension(path, ".fits") || PathHasExtension(path, ".fit")) {
      return 0.5;
    }
    return 0.0;
  }

  Result<std::unique_ptr<RawSourceAdapter>> Create(
      const std::string& path, const OpenOptions& options,
      std::unique_ptr<RandomAccessFile> file) const override {
    (void)options;  // the FITS header is authoritative for the schema
    NODB_ASSIGN_OR_RETURN(std::unique_ptr<FitsAdapter> adapter,
                          FitsAdapter::Make(path, std::move(file)));
    return std::unique_ptr<RawSourceAdapter>(std::move(adapter));
  }
};

}  // namespace

std::unique_ptr<AdapterFactory> MakeFitsAdapterFactory() {
  return std::make_unique<FitsAdapterFactory>();
}

}  // namespace nodb
