#include "exec/parallel_raw_scan.h"

#include <algorithm>
#include <utility>

#include "expr/evaluator.h"

namespace nodb {

namespace {
constexpr uint32_t kUnknown = PositionalMap::kUnknown;

/// Morsel auto-sizing bounds: small enough that a scan splits into several
/// units per worker (load balance, bounded early-Close overshoot), large
/// enough that per-morsel overhead (seek, boundary probe, merge) stays
/// negligible.
constexpr uint64_t kMinMorselBytes = 256 * 1024;
constexpr uint64_t kMaxMorselBytes = 16 * 1024 * 1024;
/// Target morsels per worker thread.
constexpr int kMorselsPerThread = 8;
}  // namespace

ParallelRawScanOp::ParallelRawScanOp(TableRuntime* runtime,
                                     const PlannedScan* scan,
                                     int working_width, InSituOptions options,
                                     int num_threads, uint64_t morsel_bytes,
                                     ThreadPool* pool, ExecControlPtr control)
    : runtime_(runtime), scan_(scan), working_width_(working_width),
      opts_(options), num_threads_(std::max(2, num_threads)),
      morsel_bytes_option_(morsel_bytes), pool_(pool),
      control_(std::move(control)) {}

ParallelRawScanOp::~ParallelRawScanOp() {
  CancelAndJoin();
  // Error paths abandon the pipeline without the operator Close protocol;
  // the epoch must still end or its chunks stay eviction-protected
  // forever and can wedge the positional map's budget shut.
  if (epoch_token_ != 0 && runtime_->pmap != nullptr) {
    runtime_->pmap->EndEpoch(epoch_token_);
    epoch_token_ = 0;
  }
}

uint64_t ParallelRawScanOp::KnownTotalTuples() const {
  if (runtime_->pmap != nullptr && runtime_->pmap->total_tuples() > 0) {
    return runtime_->pmap->total_tuples();
  }
  if (runtime_->promoted != nullptr && runtime_->promoted->row_count() > 0) {
    return runtime_->promoted->row_count();
  }
  int64_t hint = adapter_->row_count_hint();
  return hint > 0 ? static_cast<uint64_t>(hint) : 0;
}

bool ParallelRawScanOp::FullyCached(uint64_t total) const {
  // Every output attribute promoted: the serial scan serves the whole table
  // from the columnar store without touching the file, so splitting the
  // file would only add reads — same reasoning as the fully-cached case.
  const PromotedColumns* promo = runtime_->promoted.get();
  if (promo != nullptr && promo->row_count() > 0 && !output_attrs_.empty()) {
    bool all_promoted = true;
    for (int a : output_attrs_) {
      if (!promo->IsPromoted(a)) {
        all_promoted = false;
        break;
      }
    }
    if (all_promoted) return true;
  }
  if (total == 0 || !opts_.use_cache || runtime_->cache == nullptr) {
    return false;
  }
  ColumnCache* cache = runtime_->cache.get();
  const uint64_t stripes =
      (total + tuples_per_stripe_ - 1) / tuples_per_stripe_;
  for (uint64_t s = 0; s < stripes; ++s) {
    for (int a : output_attrs_) {
      if (!cache->Contains(s, a)) return false;
    }
  }
  return true;
}

Status ParallelRawScanOp::PlanMorsels() {
  morsels_.clear();
  // A source that cannot serve concurrent random reads cheaply — a
  // compressed stream whose checkpoint index is not built yet, where every
  // worker's first read would re-inflate from byte 0 — runs single-morsel:
  // the serial pass streams once and *builds* the index, and the next scan
  // splits at its checkpoints.
  if (!adapter_->file()->SupportsConcurrentReads()) return Status::OK();
  const uint64_t target_count =
      static_cast<uint64_t>(num_threads_) * kMorselsPerThread;
  if (traits_.fixed_stride && adapter_->row_count_hint() >= 0) {
    // Record-index morsels: the stride makes every boundary arithmetic and
    // the header states the row count up front.
    const uint64_t total = static_cast<uint64_t>(adapter_->row_count_hint());
    if (total == 0) return Status::OK();
    uint64_t per = std::max<uint64_t>(1, (total + target_count - 1) /
                                             target_count);
    if (morsel_bytes_option_ > 0) {
      const uint64_t est_row_bytes =
          std::max<uint64_t>(1, adapter_->file()->size() / total);
      per = std::max<uint64_t>(1, morsel_bytes_option_ / est_row_bytes);
    }
    for (uint64_t b = 0; b < total; b += per) {
      morsels_.push_back(Morsel{b, std::min(b + per, total), true});
    }
    return Status::OK();
  }

  // Byte-range morsels: nominal split points snapped to record starts by
  // the adapter. Snapping is a pure function of the offset, so consecutive
  // morsels agree on their shared boundary — no record is lost or scanned
  // twice no matter which worker gets which morsel.
  const uint64_t size = adapter_->file()->size();
  if (size == 0) return Status::OK();
  uint64_t nominal = morsel_bytes_option_;
  if (nominal == 0) {
    nominal = std::clamp(size / target_count, kMinMorselBytes,
                         kMaxMorselBytes);
  }
  nominal = std::max<uint64_t>(1, nominal);

  // Where the source prefers certain split points — a compressed stream's
  // checkpoint offsets — use those (coalesced up to the nominal size): a
  // worker's morsel then begins exactly at a checkpoint, so its first read
  // restarts there instead of re-inflating up to an interval of overlap.
  // Arithmetic offsets cost nothing extra on a plain file.
  std::vector<uint64_t> splits;
  const std::vector<uint64_t> preferred =
      adapter_->file()->RecommendedSplitOffsets();
  if (!preferred.empty()) {
    uint64_t last = 0;
    for (uint64_t p : preferred) {
      if (p <= last || p >= size || p - last < nominal) continue;
      splits.push_back(p);
      last = p;
    }
  } else {
    for (uint64_t split = nominal; split < size; split += nominal) {
      splits.push_back(split);
    }
  }
  splits.push_back(size);

  NODB_ASSIGN_OR_RETURN(uint64_t prev, adapter_->FindRecordBoundary(0));
  for (uint64_t split : splits) {
    NODB_ASSIGN_OR_RETURN(uint64_t boundary,
                          adapter_->FindRecordBoundary(split));
    if (boundary > prev) {
      morsels_.push_back(Morsel{prev, boundary, false});
    }
    prev = boundary;
  }
  return Status::OK();
}

Status ParallelRawScanOp::Open() {
  if (runtime_->adapter == nullptr) {
    return Status::Internal("raw scan over a table without a source adapter");
  }
  adapter_ = runtime_->adapter.get();
  traits_ = adapter_->traits();
  ncols_ = runtime_->schema.num_columns();
  if (runtime_->pmap != nullptr) {
    tuples_per_stripe_ = runtime_->pmap->tuples_per_chunk();
  } else if (runtime_->cache != nullptr) {
    tuples_per_stripe_ = runtime_->cache->tuples_per_chunk();
  }

  // Attribute phases (§4.1) — the one decomposition both operators share.
  ScanAttrPlan attr_plan = ComputeScanAttrPlan(*scan_, ncols_, opts_);
  output_attrs_ = std::move(attr_plan.output_attrs);
  phase1_attrs_ = std::move(attr_plan.phase1_attrs);
  phase2_attrs_ = std::move(attr_plan.phase2_attrs);
  max_token_attr_ = attr_plan.max_token_attr;

  // Cases parallelism cannot help with run the serial operator unchanged:
  // a fully-cached table (the serial scan serves it without touching the
  // file — splitting would only *add* file reads) or a file too small to
  // split. The structures then evolve exactly as a serial scan's would.
  const uint64_t total = KnownTotalTuples();
  if (!FullyCached(total)) {
    NODB_RETURN_IF_ERROR(PlanMorsels());
  }
  if (morsels_.size() < 2) {
    serial_ = std::make_unique<RawScanOp>(runtime_, scan_, working_width_,
                                          opts_, control_);
    morsels_.clear();
    return serial_->Open();  // the serial Open records the scan access
  }
  if (runtime_->access != nullptr) {
    runtime_->access->RecordScan(output_attrs_);
  }

  // Which attributes land in pmap fragments / the cache / the statistics —
  // decided once (cold-scan assumption; InstallFragment re-checks per
  // stripe under its lock, so nothing is double-indexed if a concurrent
  // query got there first).
  const bool use_pm =
      opts_.use_positional_map && runtime_->pmap != nullptr;
  insert_attrs_.clear();
  if (use_pm) {
    if (opts_.index_intermediates) {
      for (int a = 0; a <= max_token_attr_; ++a) insert_attrs_.push_back(a);
    } else {
      insert_attrs_ = output_attrs_;
    }
    epoch_token_ = runtime_->pmap->BeginEpoch();
  }
  tracked_attrs_ = output_attrs_;
  tracked_attrs_.insert(tracked_attrs_.end(), insert_attrs_.begin(),
                        insert_attrs_.end());
  std::sort(tracked_attrs_.begin(), tracked_attrs_.end());
  tracked_attrs_.erase(
      std::unique(tracked_attrs_.begin(), tracked_attrs_.end()),
      tracked_attrs_.end());
  slot_of_.assign(ncols_, -1);
  for (size_t s = 0; s < tracked_attrs_.size(); ++s) {
    slot_of_[tracked_attrs_[s]] = static_cast<int>(s);
  }

  cache_attr_.assign(ncols_, false);
  if (opts_.use_cache && runtime_->cache != nullptr) {
    for (int a : output_attrs_) cache_attr_[a] = true;
  }
  stats_attr_.assign(ncols_, false);
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    for (int a : output_attrs_) {
      if (!runtime_->stats->HasAttr(a)) stats_attr_[a] = true;
    }
  }

  pending_ = PendingStripe{};
  pending_.vals.resize(ncols_);
  pending_.ok.assign(ncols_, true);

  slots_.clear();
  slots_.resize(morsels_.size());
  next_claim_ = 0;
  merge_idx_ = 0;
  emitted_records_ = 0;
  out_rows_.clear();
  out_idx_ = 0;
  eof_ = false;
  cancel_ = false;
  // The reorder window bounds how far workers run ahead of the consumer —
  // it is both the early-Close byte budget (at most `window_` unmerged
  // morsels are ever in flight) and the cap on staged-result memory.
  window_ = num_threads_;

  {
    std::lock_guard<std::mutex> lock(mu_);
    SubmitWorkersLocked();
  }
  opened_ = true;
  return Status::OK();
}

void ParallelRawScanOp::SubmitWorkersLocked() {
  const size_t limit = std::min<size_t>(morsels_.size(), merge_idx_ + window_);
  const size_t claimable = next_claim_ < limit ? limit - next_claim_ : 0;
  const int target =
      static_cast<int>(std::min<size_t>(num_threads_, claimable));
  while (!cancel_.load(std::memory_order_relaxed) && active_tasks_ < target) {
    ++active_tasks_;
    pool_->Submit([this] { WorkerLoop(); });
  }
}

void ParallelRawScanOp::WorkerLoop() {
  std::unique_ptr<RecordCursor> cursor;
  Status cursor_status;
  {
    Result<std::unique_ptr<RecordCursor>> c = adapter_->OpenCursor();
    if (c.ok()) {
      cursor = std::move(*c);
    } else {
      cursor_status = c.status();
    }
  }
  while (true) {
    size_t k;
    {
      // Claim the next morsel the window exposes, or exit: a worker never
      // parks on a pool thread waiting for the consumer (the consumer
      // resubmits workers as it merges — see SubmitWorkersLocked).
      std::lock_guard<std::mutex> lock(mu_);
      if (cancel_ || next_claim_ >= morsels_.size() ||
          next_claim_ >= merge_idx_ + window_) {
        break;
      }
      k = next_claim_++;
    }
    MorselResult* result = &slots_[k];
    if (cursor == nullptr) {
      result->status = cursor_status;
    } else {
      ProcessMorsel(morsels_[k], cursor.get(), result);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      result->ready = true;
    }
    result_cv_.notify_all();
  }
  {
    // Notify under the lock: once the joining thread observes
    // active_tasks_ == 0 it may destroy this operator, so the notify must
    // not touch the condition variable after the lock is released.
    std::lock_guard<std::mutex> lock(mu_);
    --active_tasks_;
    done_cv_.notify_all();
  }
}

void ParallelRawScanOp::ProcessMorsel(const Morsel& morsel,
                                      RecordCursor* cursor,
                                      MorselResult* result) {
  const bool stage_pmap = runtime_->pmap != nullptr;
  result->frag.Reset(insert_attrs_);
  result->cache_vals.assign(ncols_, {});
  result->stats_vals.assign(ncols_, {});
  result->parsed_rows.assign(ncols_, 0);
  result->parsed_bytes.assign(ncols_, 0);

  Status seek = morsel.by_index ? cursor->SeekToRecord(morsel.begin, 0)
                                : cursor->SeekToRecord(0, morsel.begin);
  if (!seek.ok()) {
    result->status = seek;
    return;
  }

  const int nslots = static_cast<int>(tracked_attrs_.size());
  std::vector<uint32_t> tuple_pos(nslots, kUnknown);
  std::vector<uint32_t> frag_pos(insert_attrs_.size(), kUnknown);
  std::vector<int> insert_slots(insert_attrs_.size());
  for (size_t i = 0; i < insert_attrs_.size(); ++i) {
    insert_slots[i] = slot_of_[insert_attrs_[i]];
  }
  bool record_corrupt = false;
  const PositionSink sink{slot_of_.data(), tuple_pos.data(),
                          &record_corrupt};
  const int offset = scan_->table.offset;
  bool all_qualified = true;  // gates phase-2 cache buffering
  uint64_t processed = 0;
  RecordRef rec;

  while (true) {
    if ((processed & 127) == 0 &&
        cancel_.load(std::memory_order_relaxed)) {
      result->canceled = true;
      return;
    }
    if (morsel.by_index && morsel.begin + processed >= morsel.end) break;
    Result<bool> has = cursor->Next(&rec);
    if (!has.ok()) {
      result->status = has.status();
      return;
    }
    if (!*has) break;
    // A record starting at or past the morsel's end belongs to the next
    // morsel (its worker snapped to the same boundary).
    if (!morsel.by_index && rec.offset >= morsel.end) break;

    for (int s = 0; s < nslots; ++s) tuple_pos[s] = kUnknown;
    if (traits_.attr0_at_start && nslots > 0 && tracked_attrs_[0] == 0) {
      tuple_pos[0] = 0;
    }
    bool record_walked = false;
    record_corrupt = false;

    // Cold-scan tokenizing: no positional-map anchors exist for a morsel
    // (workers do not know their global tuple indices yet), so anchors come
    // only from attributes already resolved within this record — exactly
    // what the serial scan does on a cold stripe.
    auto mark_absent_slots = [&] {
      record_walked = true;
      for (int s = 0; s < nslots; ++s) {
        if (tuple_pos[s] == kUnknown) tuple_pos[s] = kAbsentFieldPos;
      }
    };

    auto resolve = [&](int a) -> uint32_t {
      int slot = slot_of_[a];
      if (slot >= 0 && tuple_pos[slot] != kUnknown) return tuple_pos[slot];
      if (a == 0 && traits_.attr0_at_start) {
        if (slot >= 0) tuple_pos[slot] = 0;
        return 0;
      }
      int below = -1;
      int self =
          slot >= 0
              ? slot
              : static_cast<int>(std::lower_bound(tracked_attrs_.begin(),
                                                  tracked_attrs_.end(), a) -
                                 tracked_attrs_.begin());
      for (int s = self - 1; s >= 0; --s) {
        if (tuple_pos[s] != kUnknown && tuple_pos[s] != kAbsentFieldPos) {
          below = s;
          break;
        }
      }
      if (traits_.full_record_tokenize && record_walked) return kUnknown;
      int from_attr = below >= 0 ? tracked_attrs_[below] : -1;
      uint32_t from_pos = below >= 0 ? tuple_pos[below] : 0;
      uint32_t pos = adapter_->FindForward(rec, from_attr, from_pos, a, sink);
      if (traits_.full_record_tokenize) {
        mark_absent_slots();
      } else {
        record_walked = true;
      }
      if (slot >= 0 && pos != kUnknown) tuple_pos[slot] = pos;
      return pos;
    };

    auto parse_attr = [&](int a) -> Result<Value> {
      uint32_t pos = resolve(a);
      if (pos == kUnknown || pos == kAbsentFieldPos ||
          pos > rec.data.size()) {
        return Value::Null(runtime_->schema.column(a).type);
      }
      uint32_t next_pos = kUnknown;
      int next_slot = a + 1 < ncols_ ? slot_of_[a + 1] : -1;
      if (next_slot >= 0 && tuple_pos[next_slot] != kAbsentFieldPos) {
        next_pos = tuple_pos[next_slot];
      }
      uint32_t end = adapter_->FieldEnd(rec, a, pos, next_pos);
      ++result->parsed_rows[a];
      result->parsed_bytes[a] += end > pos ? end - pos : 0;
      return adapter_->ParseField(rec, a, pos, end);
    };

    if (!opts_.selective_tokenizing && ncols_ > 0) {
      adapter_->FindForward(rec, -1, 0, ncols_ - 1, sink);
      if (traits_.full_record_tokenize) mark_absent_slots();
    }

    Row row(working_width_);
    for (int a : phase1_attrs_) {
      Result<Value> v = parse_attr(a);
      if (!v.ok()) {
        result->status = v.status();
        return;
      }
      if (cache_attr_[a]) result->cache_vals[a].push_back(v.value());
      if (stats_attr_[a]) result->stats_vals[a].push_back(v.value());
      row[offset + a] = std::move(v).value();
    }

    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      Result<Value> v = Evaluator::Eval(*conj, row);
      if (!v.ok()) {
        result->status = v.status();
        return;
      }
      if (!Evaluator::IsTruthy(*v)) {
        pass = false;
        break;
      }
    }

    if (pass) {
      for (int a : phase2_attrs_) {
        Result<Value> v = parse_attr(a);
        if (!v.ok()) {
          result->status = v.status();
          return;
        }
        if (cache_attr_[a] && all_qualified) {
          result->cache_vals[a].push_back(v.value());
        }
        if (stats_attr_[a]) result->stats_vals[a].push_back(v.value());
        row[offset + a] = std::move(v).value();
      }
      result->rows.push_back(std::move(row));
    } else {
      all_qualified = false;
    }

    if (record_corrupt) {
      result->status = Status::Corruption(
          "corrupt raw record at offset " + std::to_string(rec.offset) +
          " of '" + std::string(adapter_->path()) + "'");
      return;
    }

    if (stage_pmap) {
      for (size_t i = 0; i < insert_slots.size(); ++i) {
        frag_pos[i] = tuple_pos[insert_slots[i]];
      }
      result->frag.AddRecord(rec.offset, frag_pos.data());
    }
    ++processed;
    result->records = processed;
  }
}

void ParallelRawScanOp::FlushPendingStripe(bool final_flush) {
  const int n = pending_.filled;
  if (n == 0) return;
  // A partial stripe is publishable only when the scan is ending there —
  // a mid-scan partial stripe would grow, and the cache keys whole chunks.
  if (n < tuples_per_stripe_ && !final_flush) return;
  ColumnCache* cache = runtime_->cache.get();
  for (int a = 0; a < ncols_; ++a) {
    if (!cache_attr_[a]) continue;
    std::vector<Value>& vals = pending_.vals[a];
    if (pending_.ok[a] && static_cast<int>(vals.size()) == n &&
        !cache->Contains(pending_.stripe, a)) {
      cache->Put(pending_.stripe, a, std::move(vals));
    }
    vals.clear();
  }
  pending_.filled = 0;
  pending_.ok.assign(ncols_, true);
}

void ParallelRawScanOp::MergeResult(MorselResult* result) {
  // Positional-map fragment: the global index of the morsel's first record
  // is the count of everything merged before it.
  if (runtime_->pmap != nullptr && !result->frag.empty()) {
    runtime_->pmap->InstallFragment(result->frag, emitted_records_,
                                    epoch_token_);
  }

  // Access accounting, flushed once per morsel by the single merge thread.
  if (ColumnAccessTracker* tracker = runtime_->access.get();
      tracker != nullptr) {
    for (int a : output_attrs_) {
      tracker->RecordParsed(a, result->parsed_rows[a],
                            result->parsed_bytes[a]);
    }
  }

  // Statistics, replayed in file order.
  if (runtime_->stats != nullptr) {
    for (int a = 0; a < ncols_; ++a) {
      if (!stats_attr_[a] || result->stats_vals[a].empty()) continue;
      runtime_->stats->AddValues(a, result->stats_vals[a].data(),
                                 result->stats_vals[a].size());
    }
  }

  // Cache stitching: append this morsel's parsed values to the stripe
  // being assembled, publishing every stripe that fills.
  if (runtime_->cache != nullptr) {
    const uint64_t n = result->records;
    uint64_t r = 0;
    while (r < n) {
      const uint64_t g = emitted_records_ + r;
      const int in_stripe = static_cast<int>(g % tuples_per_stripe_);
      if (pending_.filled == 0) pending_.stripe = g / tuples_per_stripe_;
      const uint64_t seg =
          std::min<uint64_t>(n - r, tuples_per_stripe_ - in_stripe);
      for (int a = 0; a < ncols_; ++a) {
        if (!cache_attr_[a]) continue;
        const std::vector<Value>& src = result->cache_vals[a];
        // src holds values for records [0, src.size()) of the morsel; a
        // short buffer (phase-2 column after a non-qualifying record)
        // leaves a gap that disqualifies the affected stripes.
        const uint64_t have =
            src.size() > r ? std::min<uint64_t>(seg, src.size() - r) : 0;
        if (have < seg) pending_.ok[a] = false;
        if (pending_.ok[a]) {
          pending_.vals[a].insert(pending_.vals[a].end(),
                                  src.begin() + r, src.begin() + r + have);
        }
      }
      pending_.filled += static_cast<int>(seg);
      if (pending_.filled == tuples_per_stripe_) {
        FlushPendingStripe(false);
      }
      r += seg;
    }
  }

  emitted_records_ += result->records;
}

void ParallelRawScanOp::FinalizeEof() {
  FlushPendingStripe(true);
  if (runtime_->pmap != nullptr) {
    runtime_->pmap->SetTotalTuples(emitted_records_);
  }
  runtime_->known_row_count = static_cast<double>(emitted_records_);
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    runtime_->stats->SetRowCount(emitted_records_);
    runtime_->stats_populated = true;
  }
}

Result<size_t> ParallelRawScanOp::Next(RowBatch* batch) {
  if (serial_ != nullptr) return serial_->Next(batch);
  batch->Clear();
  while (!batch->full()) {
    if (out_idx_ >= out_rows_.size()) {
      if (eof_) break;
      // Merge boundary: the cancellation/deadline poll point. The error
      // abandons the pipeline; CancelAndJoin + epoch release run in the
      // destructor, so no worker or chunk outlives the failed query.
      NODB_RETURN_IF_ERROR(CheckControl(control_));
      MorselResult* result = &slots_[merge_idx_];
      {
        std::unique_lock<std::mutex> lock(mu_);
        result_cv_.wait(lock, [&] { return result->ready; });
      }
      if (!result->status.ok()) {
        // The error surfaces exactly where a serial scan would have hit
        // it: all rows of earlier morsels were emitted, this morsel's are
        // discarded. (Workers keep finishing their claimed morsels; the
        // operator's Close/destructor joins them.)
        return result->status;
      }
      MergeResult(result);
      out_rows_ = std::move(result->rows);
      out_idx_ = 0;
      // Release the result's staging memory; the reorder window only
      // bounds *unmerged* morsels, so merged slots must not keep theirs.
      result->frag.Reset({});
      result->cache_vals.clear();
      result->cache_vals.shrink_to_fit();
      result->stats_vals.clear();
      result->stats_vals.shrink_to_fit();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++merge_idx_;
        SubmitWorkersLocked();  // the window moved: re-top the pool
      }
      if (merge_idx_ >= morsels_.size()) {
        eof_ = true;
        FinalizeEof();
      }
      continue;
    }
    std::swap(batch->PushRow(), out_rows_[out_idx_++]);
  }
  return batch->size();
}

void ParallelRawScanOp::CancelAndJoin() {
  if (!opened_) return;
  cancel_.store(true);
  // Workers notice the flag at their next claim (queued-but-unstarted
  // tasks immediately) or mid-morsel at the per-record poll; none of them
  // blocks, so the join is bounded by one morsel's work.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_tasks_ == 0; });
  opened_ = false;
}

Status ParallelRawScanOp::Close() {
  if (serial_ != nullptr) return serial_->Close();
  CancelAndJoin();
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    runtime_->stats->FinalizeAll();
  }
  if (epoch_token_ != 0 && runtime_->pmap != nullptr) {
    runtime_->pmap->EndEpoch(epoch_token_);
    epoch_token_ = 0;
  }
  return Status::OK();
}

}  // namespace nodb
