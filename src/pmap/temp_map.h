#ifndef NODB_PMAP_TEMP_MAP_H_
#define NODB_PMAP_TEMP_MAP_H_

#include <cstdint>
#include <vector>

#include "pmap/positional_map.h"

namespace nodb {

/// The paper's *temporary map* (§4.2 "Pre-fetching"): before parsing a
/// stripe, the scan pre-fetches and pre-computes all positional information
/// the current query needs into a dense matrix, so map accesses enjoy
/// temporal/spatial locality and do not interleave with tokenizing. The
/// temporary map holds only the current query's attributes and is dropped
/// when the stripe has been processed.
class TempMap {
 public:
  /// Builds the matrix for `tuples` rows of `stripe`, covering `attrs`
  /// (file-order attribute ids; typically the query's WHERE+SELECT attrs
  /// plus any anchor attributes the scan chose). Missing cells hold
  /// PositionalMap::kUnknown.
  TempMap(PositionalMap* pm, uint64_t stripe, int tuples,
          const std::vector<int>& attrs);

  /// Position (relative to row start) of `attrs[slot]` for the
  /// `tuple_in_stripe`-th row, or kUnknown.
  uint32_t Position(int tuple_in_stripe, int slot) const {
    return matrix_[static_cast<size_t>(tuple_in_stripe) * num_attrs_ + slot];
  }

  /// Overwrites a cell after the scan discovered the position by tokenizing.
  void SetPosition(int tuple_in_stripe, int slot, uint32_t pos) {
    matrix_[static_cast<size_t>(tuple_in_stripe) * num_attrs_ + slot] = pos;
  }

  int num_attrs() const { return num_attrs_; }
  int num_tuples() const { return num_tuples_; }
  /// How many cells were resolved from the positional map at build time.
  int prefilled() const { return prefilled_; }

 private:
  int num_attrs_;
  int num_tuples_;
  int prefilled_ = 0;
  std::vector<uint32_t> matrix_;
};

}  // namespace nodb

#endif  // NODB_PMAP_TEMP_MAP_H_
