#ifndef NODB_IO_BUFFERED_READER_H_
#define NODB_IO_BUFFERED_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/file.h"
#include "util/result.h"

namespace nodb {

/// Sliding-window buffered reader over a RandomAccessFile.
///
/// The in-situ scan walks a raw file in ascending tuple order but, once the
/// positional map is populated, touches only scattered byte ranges inside
/// each tuple. This reader keeps one large aligned window buffered; range
/// requests inside the window are served zero-copy as string_views, and
/// requests past the window slide it forward. That matches the paper's model
/// where the raw file is "read from disk in chunks" while parsing is
/// selective within the chunk.
class BufferedReader {
 public:
  /// `file` must outlive the reader. `buffer_size` is the window size.
  explicit BufferedReader(const RandomAccessFile* file,
                          uint64_t buffer_size = 1 << 20);

  /// Returns the `length` bytes at `offset`. The view is valid until the
  /// next call that slides the window. Requests extending past EOF are
  /// truncated. Ranges larger than the buffer grow the buffer.
  Result<std::string_view> ReadAt(uint64_t offset, uint64_t length);

  /// Hint that subsequent reads start at `offset` (positions the window so
  /// backward-tokenizing from `offset` stays in-buffer).
  Status Prefetch(uint64_t offset);

  uint64_t file_size() const { return file_->size(); }

 private:
  /// Loads the window so that it covers [offset, offset+length).
  Status Fill(uint64_t offset, uint64_t length);

  const RandomAccessFile* file_;
  std::vector<char> buffer_;
  uint64_t window_start_ = 0;  // file offset of buffer_[0]
  uint64_t window_len_ = 0;    // valid bytes in the window
};

}  // namespace nodb

#endif  // NODB_IO_BUFFERED_READER_H_
