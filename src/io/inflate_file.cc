#include "io/inflate_file.h"

#include <algorithm>
#include <cstring>
#include <limits>

#ifdef NODB_HAVE_ZLIB
#include <zlib.h>
#endif

namespace nodb {

bool InflateFile::IsGzip(std::string_view head) {
  return head.size() >= 2 && static_cast<unsigned char>(head[0]) == 0x1f &&
         static_cast<unsigned char>(head[1]) == 0x8b;
}

#ifdef NODB_HAVE_ZLIB

namespace {

/// Deflate's history window: a restart needs at most this much output
/// context, and inflateGetDictionary never returns more.
constexpr uint64_t kWindowSize = 32768;
/// Compressed input chunk per inner read.
constexpr size_t kInBufBytes = 64 * 1024;
/// Decompressed bytes discarded per inflate call while skipping forward to
/// a seek target.
constexpr size_t kDiscardBytes = 64 * 1024;
/// Inflate contexts kept live, so interleaved readers (parallel morsel
/// workers, pmap seeks racing a sequential pass) each keep locality instead
/// of restarting the single shared cursor on every alternation.
constexpr size_t kMaxCursors = 4;
/// Smallest accepted checkpoint interval (window storage dominates below
/// this; tests use small intervals to force many checkpoints).
constexpr uint64_t kMinInterval = 1024;

constexpr uint32_t kIndexMagic = 0x58495A47;  // "GZIX"
constexpr uint32_t kIndexVersion = 1;
/// Structural sanity bound, not a capacity: ~32 TiB decompressed at the
/// minimum interval.
constexpr uint32_t kMaxIndexEntries = 32u << 20;

uint32_t LoadLE32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Word-mixing FNV-style checksum over the serialized index, so a snapshot
/// section that decodes structurally but carries flipped bits is rejected
/// at install time (a wrong 32 KiB window would otherwise inflate garbage
/// that parses as plausible records).
uint64_t IndexChecksum(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull ^ (n * 0x100000001b3ull);
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

/// Bounds-checked little-endian decoder for InstallIndex.
class IndexReader {
 public:
  explicit IndexReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::string_view Bytes(size_t n) {
    if (!Need(n)) return {};
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status ZlibDataError(const std::string& path, const char* what,
                     const char* msg) {
  std::string detail = "gzip '" + path + "': " + what;
  if (msg != nullptr && *msg != '\0') {
    detail += ": ";
    detail += msg;
  }
  return Status::Corruption(detail);
}

}  // namespace

bool InflateSupported() { return true; }

/// A zran-style access point: inflation can resume at decompressed offset
/// `out_pos` given the compressed bit position and the 32 KiB of preceding
/// output (the deflate dictionary).
struct InflateFile::Checkpoint {
  uint64_t out_pos = 0;
  /// Compressed offset of the next unconsumed input byte. When `bits` != 0
  /// the byte at in_pos - 1 still holds that many unconsumed high bits,
  /// re-fed through inflatePrime.
  uint64_t in_pos = 0;
  uint8_t bits = 0;
  std::string window;
};

/// One live inflate context. `out_pos` is the decompressed offset of the
/// next byte it will produce, `in_pos` the compressed offset of the next
/// input byte to fetch from the inner file.
struct InflateFile::Cursor {
  z_stream strm;
  bool inited = false;
  bool live = false;
  /// Inflating contiguously from byte 0 in gzip-wrapped mode, where zlib
  /// verifies the CRC32/ISIZE trailer at stream end; checkpoint restarts
  /// run raw deflate and cannot.
  bool from_zero = false;
  uint64_t out_pos = 0;
  uint64_t in_pos = 0;
  uint64_t last_use = 0;
  std::vector<char> in_buf;

  Cursor() : in_buf(kInBufBytes) { std::memset(&strm, 0, sizeof(strm)); }
  ~Cursor() {
    if (inited) inflateEnd(&strm);
  }
};

InflateFile::InflateFile(std::unique_ptr<RandomAccessFile> inner,
                         uint64_t size, uint64_t interval)
    : RandomAccessFile(size, inner->path()), inner_(std::move(inner)),
      interval_(interval), discard_buf_(kDiscardBytes) {}

InflateFile::~InflateFile() = default;

Result<std::unique_ptr<InflateFile>> InflateFile::Open(
    std::unique_ptr<RandomAccessFile> inner, InflateOptions options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("InflateFile::Open: null inner file");
  }
  const std::string& path = inner->path();
  const uint64_t csize = inner->size();
  // 10-byte header + 2-byte minimum deflate stream + 8-byte trailer.
  if (csize < 20) {
    return Status::Corruption("gzip '" + path +
                              "': too short to be a gzip member (" +
                              std::to_string(csize) + " bytes)");
  }
  unsigned char header[10];
  NODB_ASSIGN_OR_RETURN(uint64_t n,
                        inner->Read(0, sizeof(header),
                                    reinterpret_cast<char*>(header)));
  if (n < sizeof(header)) {
    return Status::Corruption("gzip '" + path + "': short header read");
  }
  if (header[0] != 0x1f || header[1] != 0x8b) {
    return Status::InvalidArgument("'" + path + "' is not a gzip file");
  }
  if (header[2] != 8) {
    return Status::Corruption("gzip '" + path +
                              "': unsupported compression method " +
                              std::to_string(header[2]));
  }
  if ((header[3] & 0xe0) != 0) {
    return Status::Corruption("gzip '" + path + "': reserved FLG bits set");
  }
  // The trailer's ISIZE is the claimed decompressed size; it is what makes
  // size() exact before any inflation, and every full read path verifies it
  // (zlib's gzip mode re-checks CRC32+ISIZE, and ProbeEnd rejects streams
  // that end early or run long).
  unsigned char trailer[8];
  NODB_ASSIGN_OR_RETURN(n, inner->Read(csize - sizeof(trailer),
                                       sizeof(trailer),
                                       reinterpret_cast<char*>(trailer)));
  if (n < sizeof(trailer)) {
    return Status::Corruption("gzip '" + path + "': short trailer read");
  }
  const uint64_t isize = LoadLE32(trailer + 4);
  const uint64_t interval =
      std::max<uint64_t>(kMinInterval, options.checkpoint_interval_bytes);
  std::unique_ptr<InflateFile> file(
      new InflateFile(std::move(inner), isize, interval));
  // A zero ISIZE claims an empty payload — but zero-padded garbage after a
  // member claims the same, and with size() == 0 no read would ever touch
  // the stream to find out. Empty is cheap to verify, so do it eagerly.
  if (isize == 0) {
    NODB_RETURN_IF_ERROR(file->VerifyClaimedEmpty());
  }
  return file;
}

Status InflateFile::VerifyClaimedEmpty() const {
  std::lock_guard<std::mutex> lock(mu_);
  Cursor* c = nullptr;
  NODB_RETURN_IF_ERROR(PositionCursor(&c, 0));
  return ProbeEnd(c);
}

Status InflateFile::RestartFromZero(Cursor* c) const {
  int ret;
  if (!c->inited) {
    // 32 + 15: auto-detect the gzip wrapper; zlib parses the header and
    // verifies the CRC32/ISIZE trailer at Z_STREAM_END.
    ret = inflateInit2(&c->strm, 32 + 15);
    c->inited = (ret == Z_OK);
  } else {
    ret = inflateReset2(&c->strm, 32 + 15);
  }
  if (ret != Z_OK) {
    return Status::Internal("inflateInit failed for '" + path() + "'");
  }
  c->strm.next_in = Z_NULL;
  c->strm.avail_in = 0;
  c->in_pos = 0;
  c->out_pos = 0;
  c->from_zero = true;
  c->live = true;
  full_restarts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status InflateFile::RestartFromCheckpoint(Cursor* c,
                                          const Checkpoint& cp) const {
  int ret;
  if (!c->inited) {
    ret = inflateInit2(&c->strm, -15);  // raw deflate
    c->inited = (ret == Z_OK);
  } else {
    ret = inflateReset2(&c->strm, -15);
  }
  if (ret != Z_OK) {
    return Status::Internal("inflateInit failed for '" + path() + "'");
  }
  c->strm.next_in = Z_NULL;
  c->strm.avail_in = 0;
  if (cp.bits != 0) {
    char byte;
    NODB_ASSIGN_OR_RETURN(uint64_t n, inner_->Read(cp.in_pos - 1, 1, &byte));
    if (n != 1) {
      return Status::Corruption("gzip '" + path() +
                                "': short read at checkpoint bit position");
    }
    ret = inflatePrime(&c->strm, cp.bits,
                       static_cast<unsigned char>(byte) >> (8 - cp.bits));
    if (ret != Z_OK) {
      return Status::Internal("inflatePrime failed for '" + path() + "'");
    }
  }
  if (!cp.window.empty()) {
    ret = inflateSetDictionary(
        &c->strm, reinterpret_cast<const Bytef*>(cp.window.data()),
        static_cast<uInt>(cp.window.size()));
    if (ret != Z_OK) {
      return Status::Internal("inflateSetDictionary failed for '" + path() +
                              "'");
    }
  }
  c->in_pos = cp.in_pos;
  c->out_pos = cp.out_pos;
  c->from_zero = false;
  c->live = true;
  checkpoint_restarts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status InflateFile::PositionCursor(Cursor** out, uint64_t target) const {
  ++lru_tick_;
  // Nearest checkpoint at or below the target.
  const Checkpoint* cp = nullptr;
  auto it = std::upper_bound(
      index_.begin(), index_.end(), target,
      [](uint64_t t, const Checkpoint& p) { return t < p.out_pos; });
  if (it != index_.begin()) cp = &*(it - 1);
  const uint64_t cp_out = cp == nullptr ? 0 : cp->out_pos;

  // A live cursor between that checkpoint and the target beats restarting:
  // it has strictly less left to inflate. The common sequential case is a
  // cursor sitting exactly at the target.
  Cursor* best = nullptr;
  for (const auto& up : cursors_) {
    Cursor* c = up.get();
    if (c->live && c->out_pos <= target &&
        (best == nullptr || c->out_pos > best->out_pos)) {
      best = c;
    }
  }
  if (best != nullptr && best->out_pos >= cp_out) {
    best->last_use = lru_tick_;
    *out = best;
    return Status::OK();
  }

  Cursor* c;
  if (cursors_.size() < kMaxCursors) {
    cursors_.push_back(std::make_unique<Cursor>());
    c = cursors_.back().get();
  } else {
    c = cursors_.front().get();
    for (const auto& up : cursors_) {
      if (up->last_use < c->last_use) c = up.get();
    }
  }
  c->last_use = lru_tick_;
  Status s = cp == nullptr ? RestartFromZero(c)
                           : RestartFromCheckpoint(c, *cp);
  if (!s.ok()) {
    c->live = false;
    return s;
  }
  *out = c;
  return Status::OK();
}

void InflateFile::MaybeRecordCheckpoint(Cursor* c) const {
  const uint64_t last = index_.empty() ? 0 : index_.back().out_pos;
  if (c->out_pos < last + interval_ || c->out_pos >= size_) return;
  Checkpoint cp;
  cp.out_pos = c->out_pos;
  cp.bits = static_cast<uint8_t>(c->strm.data_type & 7);
  cp.in_pos = c->in_pos - c->strm.avail_in;
  cp.window.resize(kWindowSize);
  uInt wlen = static_cast<uInt>(kWindowSize);
  if (inflateGetDictionary(&c->strm,
                           reinterpret_cast<Bytef*>(cp.window.data()),
                           &wlen) != Z_OK) {
    return;  // no checkpoint is only a cost, never an error
  }
  cp.window.resize(wlen);
  index_.push_back(std::move(cp));
}

Status InflateFile::StreamEnded(Cursor* c) const {
  // The cursor is spent either way: a later read restarts.
  c->live = false;
  if (c->out_pos != size_) {
    return ZlibDataError(
        path(), "stream ended before its ISIZE claim",
        ("decompressed " + std::to_string(c->out_pos) + " of claimed " +
         std::to_string(size_) + " bytes")
            .c_str());
  }
  // Gzip-wrapped mode consumed the 8-byte trailer reaching Z_STREAM_END;
  // raw-deflate restarts stop right before it. Anything further —
  // concatenated members, appended garbage — would silently not be served,
  // so reject it.
  const uint64_t leftover =
      c->strm.avail_in + (inner_->size() - c->in_pos);
  const uint64_t expected = c->from_zero ? 0 : 8;
  if (leftover != expected) {
    return ZlibDataError(path(), "trailing data after gzip member",
                         (std::to_string(leftover) + " unconsumed bytes, "
                          "expected " + std::to_string(expected) +
                          " (concatenated members are not supported)")
                             .c_str());
  }
  end_verified_ = true;
  index_complete_ = true;
  return Status::OK();
}

Status InflateFile::InflateStep(Cursor* c, char* dst, uint64_t want,
                                uint64_t* got, bool* ended) const {
  *got = 0;
  *ended = false;
  z_stream* s = &c->strm;
  if (s->avail_in == 0) {
    const uint64_t in_left = inner_->size() - c->in_pos;
    const uint64_t take = std::min<uint64_t>(c->in_buf.size(), in_left);
    if (take > 0) {
      NODB_ASSIGN_OR_RETURN(uint64_t n,
                            inner_->Read(c->in_pos, take, c->in_buf.data()));
      s->next_in = reinterpret_cast<Bytef*>(c->in_buf.data());
      s->avail_in = static_cast<uInt>(n);
      c->in_pos += n;
    }
  }
  s->next_out = reinterpret_cast<Bytef*>(dst);
  s->avail_out = static_cast<uInt>(
      std::min<uint64_t>(want, std::numeric_limits<uInt>::max()));
  const uInt before = s->avail_out;
  // Z_BLOCK makes inflate stop at deflate block boundaries — the only
  // places a checkpoint can be recorded. Once the index is complete the
  // extra returns buy nothing.
  const int flush = index_complete_ ? Z_NO_FLUSH : Z_BLOCK;
  const int ret = inflate(s, flush);
  *got = before - s->avail_out;
  c->out_pos += *got;
  bytes_inflated_.fetch_add(*got, std::memory_order_relaxed);
  switch (ret) {
    case Z_STREAM_END:
      *ended = true;
      return Status::OK();
    case Z_OK:
    case Z_BUF_ERROR:
      if (!index_complete_ && ret == Z_OK && (s->data_type & 128) != 0 &&
          (s->data_type & 64) == 0) {
        MaybeRecordCheckpoint(c);
      }
      if (*got == 0 && s->avail_in == 0 && c->in_pos >= inner_->size()) {
        c->live = false;
        return ZlibDataError(path(), "truncated stream",
                             "compressed data ends mid-member");
      }
      return Status::OK();
    case Z_NEED_DICT:
    case Z_DATA_ERROR:
      c->live = false;
      return ZlibDataError(path(), "invalid compressed data", s->msg);
    case Z_MEM_ERROR:
      c->live = false;
      return Status::Internal("inflate out of memory for '" + path() + "'");
    default:
      c->live = false;
      return Status::Internal("inflate returned " + std::to_string(ret) +
                              " for '" + path() + "'");
  }
}

Status InflateFile::ProbeEnd(Cursor* c) const {
  // The cursor sits at the claimed end. The stream must end exactly here:
  // inflate until Z_STREAM_END, rejecting any further output (a lying
  // ISIZE, or a concatenated member whose trailer Open read, would
  // otherwise silently truncate the data).
  while (true) {
    char extra;
    uint64_t got = 0;
    bool ended = false;
    NODB_RETURN_IF_ERROR(InflateStep(c, &extra, 1, &got, &ended));
    if (got > 0) {
      c->live = false;
      return ZlibDataError(path(),
                           "decompressed data extends past the ISIZE claim",
                           nullptr);
    }
    if (ended) return StreamEnded(c);
  }
}

Status InflateFile::InflateRange(Cursor* c, uint64_t target, uint64_t length,
                                 char* scratch, uint64_t* produced) const {
  *produced = 0;
  while (true) {
    char* dst;
    uint64_t want;
    const bool skipping = c->out_pos < target;
    if (skipping) {
      dst = discard_buf_.data();
      want = std::min<uint64_t>(target - c->out_pos, discard_buf_.size());
    } else {
      want = length - *produced;
      if (want == 0) break;
      dst = scratch + *produced;
    }
    uint64_t got = 0;
    bool ended = false;
    NODB_RETURN_IF_ERROR(InflateStep(c, dst, want, &got, &ended));
    if (!skipping) *produced += got;
    if (ended) {
      NODB_RETURN_IF_ERROR(StreamEnded(c));
      break;
    }
  }
  if (c->live && c->out_pos == size_ && !end_verified_) {
    NODB_RETURN_IF_ERROR(ProbeEnd(c));
  }
  return Status::OK();
}

Result<uint64_t> InflateFile::Read(uint64_t offset, uint64_t length,
                                   char* scratch) const {
  if (offset >= size_ || length == 0) return static_cast<uint64_t>(0);
  length = std::min(length, size_ - offset);
  std::lock_guard<std::mutex> lock(mu_);
  Cursor* c = nullptr;
  NODB_RETURN_IF_ERROR(PositionCursor(&c, offset));
  uint64_t produced = 0;
  NODB_RETURN_IF_ERROR(InflateRange(c, offset, length, scratch, &produced));
  CountRead(produced);
  return produced;
}

bool InflateFile::SupportsConcurrentReads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_complete_;
}

std::vector<uint64_t> InflateFile::RecommendedSplitOffsets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> offsets;
  offsets.reserve(index_.size());
  for (const Checkpoint& cp : index_) offsets.push_back(cp.out_pos);
  return offsets;
}

uint64_t InflateFile::checkpoint_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

bool InflateFile::index_complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_complete_;
}

std::string InflateFile::SerializeIndex() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!index_complete_) return {};
  std::string out;
  PutU32(&out, kIndexMagic);
  PutU32(&out, kIndexVersion);
  PutU64(&out, interval_);
  PutU64(&out, size_);
  PutU64(&out, inner_->size());
  PutU32(&out, static_cast<uint32_t>(index_.size()));
  for (const Checkpoint& cp : index_) {
    PutU64(&out, cp.out_pos);
    PutU64(&out, cp.in_pos);
    PutU8(&out, cp.bits);
    PutU32(&out, static_cast<uint32_t>(cp.window.size()));
    out.append(cp.window);
  }
  PutU64(&out, IndexChecksum(out.data(), out.size()));
  return out;
}

Status InflateFile::InstallIndex(std::string_view blob) const {
  if (blob.size() < 8) {
    return Status::Corruption("gzip checkpoint index: blob too short");
  }
  const size_t body = blob.size() - 8;
  IndexReader checksum_reader(blob.substr(body));
  if (checksum_reader.U64() != IndexChecksum(blob.data(), body)) {
    return Status::Corruption("gzip checkpoint index: checksum mismatch");
  }
  IndexReader r(blob.substr(0, body));
  if (r.U32() != kIndexMagic) {
    return Status::Corruption("gzip checkpoint index: bad magic");
  }
  if (r.U32() != kIndexVersion) {
    return Status::Corruption("gzip checkpoint index: unknown version");
  }
  r.U64();  // builder's interval; restart points are valid regardless
  const uint64_t total_out = r.U64();
  const uint64_t compressed = r.U64();
  if (!r.ok() || total_out != size_ || compressed != inner_->size()) {
    return Status::Corruption(
        "gzip checkpoint index: size mismatch with the open source");
  }
  const uint32_t count = r.U32();
  if (!r.ok() || count > kMaxIndexEntries) {
    return Status::Corruption("gzip checkpoint index: implausible entry "
                              "count");
  }
  std::vector<Checkpoint> parsed;
  parsed.reserve(count);
  uint64_t prev_out = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Checkpoint cp;
    cp.out_pos = r.U64();
    cp.in_pos = r.U64();
    cp.bits = r.U8();
    const uint32_t wlen = r.U32();
    if (!r.ok() || wlen > kWindowSize) {
      return Status::Corruption("gzip checkpoint index: oversized window");
    }
    std::string_view window = r.Bytes(wlen);
    if (!r.ok() || cp.out_pos <= prev_out || cp.out_pos >= size_ ||
        cp.bits > 7 || cp.in_pos < 1 || cp.in_pos > inner_->size()) {
      return Status::Corruption("gzip checkpoint index: invalid checkpoint");
    }
    cp.window.assign(window);
    prev_out = cp.out_pos;
    parsed.push_back(std::move(cp));
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("gzip checkpoint index: trailing bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  index_ = std::move(parsed);
  index_complete_ = true;
  return Status::OK();
}

std::string GzipCompress(std::string_view data) {
  z_stream strm;
  std::memset(&strm, 0, sizeof(strm));
  if (deflateInit2(&strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 16 + 15, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return {};
  }
  std::string out;
  strm.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  strm.avail_in = static_cast<uInt>(data.size());
  char buf[64 * 1024];
  int ret;
  do {
    strm.next_out = reinterpret_cast<Bytef*>(buf);
    strm.avail_out = sizeof(buf);
    ret = deflate(&strm, Z_FINISH);
    out.append(buf, sizeof(buf) - strm.avail_out);
  } while (ret == Z_OK);
  deflateEnd(&strm);
  return ret == Z_STREAM_END ? out : std::string();
}

#else  // !NODB_HAVE_ZLIB

// Build without zlib: the layer reports itself unavailable, Open returns a
// typed Unimplemented, and gz suites skip. Nothing else may be reached.

struct InflateFile::Checkpoint {};
struct InflateFile::Cursor {};

bool InflateSupported() { return false; }

InflateFile::InflateFile(std::unique_ptr<RandomAccessFile> inner,
                         uint64_t size, uint64_t interval)
    : RandomAccessFile(size, inner->path()), inner_(std::move(inner)),
      interval_(interval) {}

InflateFile::~InflateFile() = default;

Result<std::unique_ptr<InflateFile>> InflateFile::Open(
    std::unique_ptr<RandomAccessFile>, InflateOptions) {
  return Status::Unimplemented("compressed sources require a build with "
                               "zlib (cmake did not find ZLIB)");
}

Result<uint64_t> InflateFile::Read(uint64_t, uint64_t, char*) const {
  return Status::Unimplemented("built without zlib");
}

bool InflateFile::SupportsConcurrentReads() const { return false; }
std::vector<uint64_t> InflateFile::RecommendedSplitOffsets() const {
  return {};
}
uint64_t InflateFile::checkpoint_count() const { return 0; }
bool InflateFile::index_complete() const { return false; }
std::string InflateFile::SerializeIndex() const { return {}; }
Status InflateFile::InstallIndex(std::string_view) const {
  return Status::Unimplemented("built without zlib");
}

std::string GzipCompress(std::string_view) { return {}; }

#endif  // NODB_HAVE_ZLIB

}  // namespace nodb
