#include "engine/config.h"

namespace nodb {

std::string_view SystemUnderTestName(SystemUnderTest sut) {
  switch (sut) {
    case SystemUnderTest::kPostgresRawPMC:
      return "PostgresRaw PM+C";
    case SystemUnderTest::kPostgresRawPM:
      return "PostgresRaw PM";
    case SystemUnderTest::kPostgresRawC:
      return "PostgresRaw C";
    case SystemUnderTest::kPostgresRawBaseline:
      return "Baseline (in-situ)";
    case SystemUnderTest::kExternalFiles:
      return "External files";
    case SystemUnderTest::kPostgreSQL:
      return "PostgreSQL";
    case SystemUnderTest::kDbmsX:
      return "DBMS X";
    case SystemUnderTest::kMySQL:
      return "MySQL";
  }
  return "?";
}

EngineConfig EngineConfig::ForSystem(SystemUnderTest sut) {
  EngineConfig config;
  switch (sut) {
    case SystemUnderTest::kPostgresRawPMC:
      break;  // all adaptive features on (the defaults)
    case SystemUnderTest::kPostgresRawPM:
      config.cache = false;
      break;
    case SystemUnderTest::kPostgresRawC:
      // Cache plus the "minimal map maintaining positional information only
      // for the end of lines" — attribute positions off, spine on (the
      // spine rides along with the cache; see Database::RegisterCsv).
      config.positional_map = false;
      break;
    case SystemUnderTest::kPostgresRawBaseline:
      config.positional_map = false;
      config.cache = false;
      config.statistics = false;
      break;
    case SystemUnderTest::kExternalFiles:
      // The straw-man of §3.1: every query re-scans and fully re-parses the
      // file; no auxiliary structures, no selective anything.
      config.positional_map = false;
      config.cache = false;
      config.statistics = false;
      config.selective_tokenizing = false;
      config.selective_parsing = false;
      config.selective_tuple_formation = false;
      break;
    case SystemUnderTest::kPostgreSQL:
      config.loaded_storage = TableStorage::kHeap;
      config.tuple_header_bytes = 24;
      break;
    case SystemUnderTest::kDbmsX:
      config.loaded_storage = TableStorage::kCompact;
      break;
    case SystemUnderTest::kMySQL:
      config.loaded_storage = TableStorage::kHeap;
      config.tuple_header_bytes = 16;
      config.mysql_copy_penalty = true;
      break;
  }
  return config;
}

}  // namespace nodb
