#include "exec/aggregate.h"

#include <algorithm>

#include "expr/evaluator.h"

namespace nodb {

AggregateOp::AggregateOp(OperatorPtr child,
                         const std::vector<ExprPtr>* group_by,
                         const std::vector<AggregateSpec>* aggregates,
                         AggStrategy strategy, size_t groups_hint,
                         size_t batch_size, ExecControlPtr control)
    : child_(std::move(child)), group_by_(group_by), aggregates_(aggregates),
      strategy_(strategy), groups_hint_(groups_hint),
      batch_size_(batch_size), control_(std::move(control)) {
  auto col_of = [](const Expr* e) {
    return e != nullptr && e->kind == ExprKind::kColumnRef
               ? static_cast<const ColumnRefExpr*>(e)->index
               : -1;
  };
  key_cols_.reserve(group_by_->size());
  for (const ExprPtr& g : *group_by_) key_cols_.push_back(col_of(g.get()));
  arg_cols_.reserve(aggregates_->size());
  for (const AggregateSpec& spec : *aggregates_) {
    arg_cols_.push_back(col_of(spec.arg.get()));
  }
}

Status AggregateOp::EvalKeyAndArgs(const Row& input, Row* key,
                                   Row* args) const {
  key->clear();
  key->reserve(group_by_->size());
  for (size_t i = 0; i < group_by_->size(); ++i) {
    if (key_cols_[i] >= 0) {
      key->push_back(input[key_cols_[i]]);
      continue;
    }
    NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*(*group_by_)[i], input));
    key->push_back(std::move(v));
  }
  args->clear();
  args->reserve(aggregates_->size());
  for (size_t i = 0; i < aggregates_->size(); ++i) {
    const AggregateSpec& spec = (*aggregates_)[i];
    if (arg_cols_[i] >= 0) {
      args->push_back(input[arg_cols_[i]]);
    } else if (spec.arg == nullptr) {
      args->push_back(Value::Int64(0));  // COUNT(*) placeholder
    } else {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*spec.arg, input));
      args->push_back(std::move(v));
    }
  }
  return Status::OK();
}

Status AggregateOp::ConsumeHash() {
  // Global aggregation: exactly one group, so skip the hash map (and the
  // per-row key hash/probe) and fold rows straight into the accumulators.
  if (group_by_->empty()) {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggregates_->size());
    for (const AggregateSpec& spec : *aggregates_) accs.emplace_back(&spec);
    const Value count_star = Value::Int64(0);
    RowBatch batch(batch_size_);
    while (true) {
      NODB_RETURN_IF_ERROR(CheckControl(control_));
      NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch));
      if (n == 0) break;
      for (size_t i = 0; i < n; ++i) {
        const Row& row = batch[i];
        for (size_t a = 0; a < aggregates_->size(); ++a) {
          if (arg_cols_[a] >= 0) {
            accs[a].Add(row[arg_cols_[a]]);
          } else if ((*aggregates_)[a].arg == nullptr) {
            accs[a].Add(count_star);
          } else {
            NODB_ASSIGN_OR_RETURN(
                Value v, Evaluator::Eval(*(*aggregates_)[a].arg, row));
            accs[a].Add(v);
          }
        }
      }
    }
    Row out;
    out.reserve(accs.size());
    for (const AggAccumulator& acc : accs) out.push_back(acc.Final());
    output_.push_back(std::move(out));
    return Status::OK();
  }

  std::unordered_map<Row, std::vector<AggAccumulator>, RowHasher, RowEq>
      groups;
  if (groups_hint_ > 0) groups.reserve(groups_hint_);
  RowBatch batch(batch_size_);
  Row key, args;
  bool saw_input = false;
  while (true) {
    NODB_RETURN_IF_ERROR(CheckControl(control_));
    NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch));
    if (n == 0) break;
    saw_input = true;
    for (size_t i = 0; i < n; ++i) {
      NODB_RETURN_IF_ERROR(EvalKeyAndArgs(batch[i], &key, &args));
      auto it = groups.find(key);
      if (it == groups.end()) {
        std::vector<AggAccumulator> accs;
        accs.reserve(aggregates_->size());
        for (const AggregateSpec& spec : *aggregates_) {
          accs.emplace_back(&spec);
        }
        it = groups.emplace(key, std::move(accs)).first;
      }
      for (size_t a = 0; a < aggregates_->size(); ++a) {
        it->second[a].Add(args[a]);
      }
    }
  }
  // Global aggregation over zero rows still yields one output row.
  if (groups.empty() && group_by_->empty() && !saw_input) {
    std::vector<AggAccumulator> accs;
    for (const AggregateSpec& spec : *aggregates_) accs.emplace_back(&spec);
    Row out;
    for (const AggAccumulator& acc : accs) out.push_back(acc.Final());
    output_.push_back(std::move(out));
    return Status::OK();
  }
  output_.reserve(groups.size());
  for (auto& [group_key, accs] : groups) {
    Row out = group_key;
    for (const AggAccumulator& acc : accs) out.push_back(acc.Final());
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Status AggregateOp::ConsumeSort() {
  // Materialize (key, args) for every input row, sort by key, merge runs.
  // Deliberately memory- and comparison-heavy relative to hashing — this is
  // the conservative plan of a statistics-less optimizer.
  struct Pair {
    Row key;
    Row args;
  };
  std::vector<Pair> pairs;
  RowBatch batch(batch_size_);
  while (true) {
    NODB_RETURN_IF_ERROR(CheckControl(control_));
    NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      Pair p;
      NODB_RETURN_IF_ERROR(EvalKeyAndArgs(batch[i], &p.key, &p.args));
      pairs.push_back(std::move(p));
    }
  }
  auto key_less = [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() && b[i].is_null()) continue;
      if (a[i].is_null()) return false;  // NULLs last
      if (b[i].is_null()) return true;
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::stable_sort(pairs.begin(), pairs.end(),
                   [&](const Pair& a, const Pair& b) {
                     return key_less(a.key, b.key);
                   });

  if (pairs.empty()) {
    if (group_by_->empty()) {
      std::vector<AggAccumulator> accs;
      for (const AggregateSpec& spec : *aggregates_) accs.emplace_back(&spec);
      Row out;
      for (const AggAccumulator& acc : accs) out.push_back(acc.Final());
      output_.push_back(std::move(out));
    }
    return Status::OK();
  }

  RowEq eq;
  size_t run_start = 0;
  std::vector<AggAccumulator> accs;
  auto flush = [&](size_t start) {
    Row out = pairs[start].key;
    for (const AggAccumulator& acc : accs) out.push_back(acc.Final());
    output_.push_back(std::move(out));
  };
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i == run_start) {
      accs.clear();
      for (const AggregateSpec& spec : *aggregates_) accs.emplace_back(&spec);
    } else if (!eq(pairs[i].key, pairs[run_start].key)) {
      flush(run_start);
      run_start = i;
      accs.clear();
      for (const AggregateSpec& spec : *aggregates_) accs.emplace_back(&spec);
    }
    for (size_t a = 0; a < aggregates_->size(); ++a) {
      accs[a].Add(pairs[i].args[a]);
    }
  }
  flush(run_start);
  return Status::OK();
}

Status AggregateOp::Open() {
  NODB_RETURN_IF_ERROR(child_->Open());
  if (strategy_ == AggStrategy::kHash) {
    return ConsumeHash();
  }
  return ConsumeSort();
}

Result<size_t> AggregateOp::Next(RowBatch* batch) {
  batch->Clear();
  while (!batch->full() && next_ < output_.size()) {
    batch->PushBack(std::move(output_[next_++]));
  }
  return batch->size();
}

}  // namespace nodb
