#include "server/metrics.h"

#include <algorithm>

namespace nodb {

void LatencyRing::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < kCapacity) {
    samples_.push_back(ms);
  } else {
    samples_[next_] = ms;
    next_ = (next_ + 1) % kCapacity;
  }
  ++total_;
}

double LatencyRing::Percentile(double p) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = samples_;
  }
  if (copy.empty()) return 0;
  std::sort(copy.begin(), copy.end());
  double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, copy.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return copy[lo] + (copy[hi] - copy[lo]) * frac;
}

uint64_t LatencyRing::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

ServerStats ServerMetrics::Snapshot() const {
  ServerStats s;
  s.sessions_opened = sessions_opened.load();
  s.sessions_closed = sessions_closed.load();
  s.sessions_active = static_cast<int64_t>(s.sessions_opened) -
                      static_cast<int64_t>(s.sessions_closed);
  s.queries_started = queries_started.load();
  s.queries_finished = queries_finished.load();
  s.queries_failed = queries_failed.load();
  s.queries_cancelled = queries_cancelled.load();
  s.queries_deadline = queries_deadline.load();
  s.queries_rejected = queries_rejected.load();
  s.rows_streamed = rows_streamed.load();
  s.bytes_streamed = bytes_streamed.load();
  s.cold_admitted = cold_admitted.load();
  s.warm_admitted = warm_admitted.load();
  s.latency_samples = latency.count();
  s.p50_ms = latency.Percentile(50);
  s.p99_ms = latency.Percentile(99);
  return s;
}

}  // namespace nodb
