#ifndef NODB_TYPES_SCHEMA_H_
#define NODB_TYPES_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "types/data_type.h"

namespace nodb {

/// A named, typed column of a table.
struct Column {
  std::string name;
  TypeId type;

  bool operator==(const Column& other) const = default;
};

/// Ordered collection of columns describing a table or an operator's output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}
  Schema(std::initializer_list<Column> columns) : columns_(columns) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (case-sensitive), or -1.
  int IndexOf(const std::string& name) const;

  /// Appends a column and returns its index.
  int AddColumn(Column column);

  /// Schema containing only `indices` (in the given order).
  Schema Select(const std::vector<int>& indices) const;

  /// "name:type, name:type, ..." for debugging and result headers.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace nodb

#endif  // NODB_TYPES_SCHEMA_H_
