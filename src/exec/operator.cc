#include "exec/operator.h"

// Operator is an interface; this translation unit anchors the target.
