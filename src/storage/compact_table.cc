#include "storage/compact_table.h"

#include <cstring>

#include <unistd.h>

namespace nodb {

namespace {

constexpr uint32_t kCompactMagic = 0x43445842;  // "BXDC"
constexpr size_t kHeaderBytes = 12;             // magic u32 + row_count u64
constexpr size_t kBlockTarget = 64 * 1024;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

}  // namespace

Result<std::unique_ptr<CompactTable>> CompactTable::Create(
    const std::string& path, Schema schema) {
  auto table = std::unique_ptr<CompactTable>(
      new CompactTable(path, std::move(schema)));
  NODB_ASSIGN_OR_RETURN(table->writer_, WritableFile::Create(path));
  // Header placeholder; row count patched by FinishLoad via rewrite.
  std::string header;
  PutU32(&header, kCompactMagic);
  uint64_t zero = 0;
  header.append(reinterpret_cast<const char*>(&zero), 8);
  NODB_RETURN_IF_ERROR(table->writer_->Append(header));
  return table;
}

Result<std::unique_ptr<CompactTable>> CompactTable::Open(
    const std::string& path, Schema schema) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        RandomAccessFile::Open(path));
  char header[kHeaderBytes];
  NODB_ASSIGN_OR_RETURN(uint64_t n, file->Read(0, kHeaderBytes, header));
  if (n != kHeaderBytes || GetU32(header) != kCompactMagic) {
    return Status::Corruption("bad compact table header: " + path);
  }
  auto table = std::unique_ptr<CompactTable>(
      new CompactTable(path, std::move(schema)));
  memcpy(&table->row_count_, header + 4, 8);
  return table;
}

void CompactTable::SerializeRow(const Row& row, std::string* out) const {
  out->clear();
  size_t bitmap_bytes = (row.size() + 7) / 8;
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      (*out)[i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    switch (schema_.column(static_cast<int>(i)).type) {
      case TypeId::kInt64: {
        int64_t x = v.int64();
        out->append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDouble: {
        double x = v.f64();
        out->append(reinterpret_cast<const char*>(&x), 8);
        break;
      }
      case TypeId::kDate: {
        int32_t x = v.date();
        out->append(reinterpret_cast<const char*>(&x), 4);
        break;
      }
      case TypeId::kBool:
        out->push_back(v.boolean() ? 1 : 0);
        break;
      case TypeId::kString:
        PutU32(out, static_cast<uint32_t>(v.str().size()));
        out->append(v.str());
        break;
    }
  }
}

Status CompactTable::FlushBlock() {
  if (block_rows_ == 0) return Status::OK();
  std::string framed;
  PutU32(&framed, static_cast<uint32_t>(block_buffer_.size()));
  PutU32(&framed, block_rows_);
  NODB_RETURN_IF_ERROR(writer_->Append(framed));
  NODB_RETURN_IF_ERROR(writer_->Append(block_buffer_));
  block_buffer_.clear();
  block_rows_ = 0;
  return Status::OK();
}

Status CompactTable::Append(const Row& row) {
  if (writer_ == nullptr) return Status::Internal("Append after FinishLoad");
  SerializeRow(row, &row_scratch_);
  PutU32(&block_buffer_, static_cast<uint32_t>(row_scratch_.size()));
  block_buffer_.append(row_scratch_);
  ++block_rows_;
  ++row_count_;
  if (block_buffer_.size() >= kBlockTarget) {
    return FlushBlock();
  }
  return Status::OK();
}

Status CompactTable::FinishLoad() {
  NODB_RETURN_IF_ERROR(FlushBlock());
  NODB_RETURN_IF_ERROR(writer_->Close());
  writer_.reset();
  // Patch the row count in the header, then flush to stable storage
  // (loads pay durability, as a DBMS bulk load does).
  FILE* f = std::fopen(path_.c_str(), "r+b");
  if (f == nullptr) return Status::IOError("reopen for header patch");
  if (std::fseek(f, 4, SEEK_SET) != 0 ||
      std::fwrite(&row_count_, 8, 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("patch header");
  }
  std::fflush(f);
  fdatasync(fileno(f));
  std::fclose(f);
  return Status::OK();
}

CompactTable::Scanner::Scanner(const CompactTable* table,
                               std::vector<bool> needed)
    : table_(table), needed_(std::move(needed)), offset_(kHeaderBytes) {}

Status CompactTable::Scanner::LoadNextBlock() {
  if (file_ == nullptr) {
    NODB_ASSIGN_OR_RETURN(file_, RandomAccessFile::Open(table_->path_));
    reader_ = std::make_unique<BufferedReader>(file_.get(), 1 << 20);
  }
  if (offset_ + 8 > file_->size()) {
    rows_in_block_ = 0;
    row_in_block_ = 0;
    block_ = std::string_view();
    return Status::OK();  // EOF
  }
  NODB_ASSIGN_OR_RETURN(std::string_view frame, reader_->ReadAt(offset_, 8));
  uint32_t block_bytes = GetU32(frame.data());
  uint32_t nrows = GetU32(frame.data() + 4);
  NODB_ASSIGN_OR_RETURN(block_, reader_->ReadAt(offset_ + 8, block_bytes));
  offset_ += 8 + block_bytes;
  rows_in_block_ = nrows;
  row_in_block_ = 0;
  block_pos_ = 0;
  return Status::OK();
}

Result<bool> CompactTable::Scanner::Next(Row* row) {
  if (row_in_block_ >= rows_in_block_) {
    NODB_RETURN_IF_ERROR(LoadNextBlock());
    if (rows_in_block_ == 0) return false;
  }
  if (block_pos_ + 4 > block_.size()) {
    return Status::Corruption("compact block truncated");
  }
  uint32_t row_len = GetU32(block_.data() + block_pos_);
  block_pos_ += 4;
  if (block_pos_ + row_len > block_.size()) {
    return Status::Corruption("compact row extends past block");
  }
  std::string_view payload(block_.data() + block_pos_, row_len);
  block_pos_ += row_len;
  ++row_in_block_;

  const Schema& schema = table_->schema_;
  int ncols = schema.num_columns();
  row->assign(ncols, Value());
  size_t bitmap_bytes = (static_cast<size_t>(ncols) + 7) / 8;
  if (payload.size() < bitmap_bytes) {
    return Status::Corruption("compact row shorter than bitmap");
  }
  const char* bitmap = payload.data();
  size_t pos = bitmap_bytes;
  for (int i = 0; i < ncols; ++i) {
    bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    TypeId type = schema.column(i).type;
    if (is_null) {
      (*row)[i] = Value::Null(type);
      continue;
    }
    switch (type) {
      case TypeId::kInt64: {
        int64_t x;
        memcpy(&x, payload.data() + pos, 8);
        if (needed_[i]) (*row)[i] = Value::Int64(x);
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        double x;
        memcpy(&x, payload.data() + pos, 8);
        if (needed_[i]) (*row)[i] = Value::Double(x);
        pos += 8;
        break;
      }
      case TypeId::kDate: {
        int32_t x;
        memcpy(&x, payload.data() + pos, 4);
        if (needed_[i]) (*row)[i] = Value::Date(x);
        pos += 4;
        break;
      }
      case TypeId::kBool: {
        if (needed_[i]) (*row)[i] = Value::Bool(payload[pos] != 0);
        pos += 1;
        break;
      }
      case TypeId::kString: {
        uint32_t len = GetU32(payload.data() + pos);
        pos += 4;
        if (needed_[i]) {
          (*row)[i] =
              Value::String(std::string_view(payload.data() + pos, len));
        }
        pos += len;
        break;
      }
    }
    if (pos > payload.size()) {
      return Status::Corruption("compact row field overruns payload");
    }
  }
  return true;
}

}  // namespace nodb
