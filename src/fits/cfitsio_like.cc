#include "fits/cfitsio_like.h"

#include <memory>
#include <string>
#include <vector>

#include "fits/fits_format.h"
#include "io/buffered_reader.h"
#include "io/file.h"

namespace nodb {

struct fitsfile {
  std::unique_ptr<RandomAccessFile> file;
  FitsTableInfo info;
};

int fits_open_table(fitsfile** handle, const char* path) {
  auto file_result = RandomAccessFile::Open(path);
  if (!file_result.ok()) return kFitsError;
  auto info_result = ParseFitsHeader(file_result.value().get());
  if (!info_result.ok()) return kFitsError;
  auto* f = new fitsfile;
  f->file = std::move(file_result).value();
  f->info = std::move(info_result).value();
  *handle = f;
  return kFitsOk;
}

int fits_close_file(fitsfile* handle) {
  delete handle;
  return kFitsOk;
}

int fits_get_num_rows(fitsfile* handle, long long* num_rows) {
  *num_rows = static_cast<long long>(handle->info.num_rows);
  return kFitsOk;
}

int fits_get_num_cols(fitsfile* handle, int* num_cols) {
  *num_cols = static_cast<int>(handle->info.columns.size());
  return kFitsOk;
}

int fits_get_colnum(fitsfile* handle, const char* name, int* colnum) {
  for (size_t i = 0; i < handle->info.columns.size(); ++i) {
    if (handle->info.columns[i].name == name) {
      *colnum = static_cast<int>(i) + 1;
      return kFitsOk;
    }
  }
  return kFitsError;
}

namespace {

/// Shared strided read loop: every call walks the rows from the file
/// (through a streaming buffer), decoding one column. No state survives the
/// call — re-running a query re-reads the table, like the paper's CFITSIO
/// program.
template <typename T, typename ConvertFn>
int ReadColumn(fitsfile* handle, int colnum, long long firstrow,
               long long nelem, T* out, ConvertFn&& convert) {
  if (colnum < 1 || colnum > static_cast<int>(handle->info.columns.size())) {
    return kFitsError;
  }
  const FitsColumn& col = handle->info.columns[colnum - 1];
  if (firstrow < 1 ||
      static_cast<uint64_t>(firstrow - 1 + nelem) > handle->info.num_rows) {
    return kFitsError;
  }
  BufferedReader reader(handle->file.get(), 1 << 20);
  uint64_t row_bytes = handle->info.row_bytes;
  uint64_t base = handle->info.data_start +
                  static_cast<uint64_t>(firstrow - 1) * row_bytes;
  for (long long i = 0; i < nelem; ++i) {
    auto view = reader.ReadAt(base + static_cast<uint64_t>(i) * row_bytes +
                                  col.offset,
                              col.width);
    if (!view.ok() || view.value().size() != col.width) return kFitsError;
    Value v = DecodeFitsField(col, view.value().data());
    out[i] = convert(v);
  }
  return kFitsOk;
}

}  // namespace

int fits_read_col_dbl(fitsfile* handle, int colnum, long long firstrow,
                      long long nelem, double* out) {
  return ReadColumn(handle, colnum, firstrow, nelem, out,
                    [](const Value& v) { return v.AsDouble(); });
}

int fits_read_col_lng(fitsfile* handle, int colnum, long long firstrow,
                      long long nelem, long long* out) {
  return ReadColumn(handle, colnum, firstrow, nelem, out,
                    [](const Value& v) {
                      return static_cast<long long>(v.int64());
                    });
}

}  // namespace nodb
