// Warm-restart snapshot subsystem (src/snapshot): round trips, zero-reparse
// warm opens, staleness/corruption fallback, budget interaction, the
// background writer, and catalog/STATS reporting. The invariant under test
// throughout: a snapshot can make a restart faster, never wrong — every
// degraded outcome must answer byte-identically to a never-snapshotted
// engine.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "engine/engines.h"
#include "io/inflate_file.h"
#include "snapshot/snapshot.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.rows = 10000;  // 3 stripes at the default 4096 tuples_per_chunk
    spec_.cols = 5;
    csv_ = dir_.File("t.csv");
    ASSERT_TRUE(GenerateWideCsv(csv_, spec_).ok());
    snap_dir_ = dir_.File("snaps");
  }

  EngineConfig BaseConfig() {
    return EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  }

  EngineConfig SnapConfig() {
    EngineConfig cfg = BaseConfig();
    cfg.snapshot_dir = snap_dir_;
    return cfg;
  }

  std::unique_ptr<Database> OpenDb(const EngineConfig& cfg) {
    auto db = std::make_unique<Database>(cfg);
    EXPECT_TRUE(db->RegisterCsv("t", csv_, MicroSchema(spec_)).ok());
    return db;
  }

  /// Executes `sql` and flattens the result to comparable strings; a failed
  /// query yields a sentinel that can never equal a real result.
  static std::vector<std::string> Rows(Database* db, const std::string& sql) {
    auto result = db->Execute(sql);
    if (!result.ok()) {
      return {"<error: " + result.status().ToString() + ">"};
    }
    std::vector<std::string> rows;
    rows.reserve(result->rows.size());
    for (const Row& row : result->rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s.push_back('|');
      }
      rows.push_back(std::move(s));
    }
    return rows;
  }

  static const std::vector<std::string>& Queries() {
    static const std::vector<std::string> queries = {
        "SELECT COUNT(*) FROM t",
        "SELECT a1, a3 FROM t WHERE a1 < 200000000",
        "SELECT SUM(a2), MIN(a4), MAX(a5) FROM t",
    };
    return queries;
  }

  /// Full warm-up: tokenizes every row and caches every attribute.
  static void Warm(Database* db) {
    auto result =
        db->Execute("SELECT SUM(a1), SUM(a2), SUM(a3), SUM(a4), SUM(a5) "
                    "FROM t");
    ASSERT_TRUE(result.ok()) << result.status();
  }

  TableInfo InfoOf(Database* db) {
    for (const TableInfo& info : db->ListTables()) {
      if (info.name == "t") return info;
    }
    return TableInfo{};
  }

  /// Warms a fresh engine, snapshots it, and returns the snapshot path.
  std::string WriteWarmSnapshot() {
    auto db = OpenDb(SnapConfig());
    Warm(db.get());
    auto saved = db->Snapshot("t");
    EXPECT_TRUE(saved.ok()) << saved.status();
    return SnapshotPathFor(snap_dir_, "t");
  }

  /// Asserts that a reopened engine (whatever its snapshot outcome) answers
  /// every probe query identically to a never-snapshotted engine.
  void ExpectColdEquivalent(Database* db) {
    auto cold = OpenDb(BaseConfig());
    for (const std::string& sql : Queries()) {
      EXPECT_EQ(Rows(db, sql), Rows(cold.get(), sql)) << sql;
    }
  }

  TempDir dir_;
  MicroDataSpec spec_;
  std::string csv_;
  std::string snap_dir_;
};

TEST_F(SnapshotTest, ChecksumCatchesFlipsAndTruncation) {
  std::string data(1000, 'x');
  data[500] = 'y';
  uint64_t base = SnapshotChecksum(data.data(), data.size());
  std::string flipped = data;
  flipped[777] ^= 0x01;
  EXPECT_NE(SnapshotChecksum(flipped.data(), flipped.size()), base);
  // Truncation that ends on identical bytes still changes the checksum
  // (length is folded in).
  EXPECT_NE(SnapshotChecksum(data.data(), data.size() - 8), base);
  std::string zeros(64, '\0');
  EXPECT_NE(SnapshotChecksum(zeros.data(), 64),
            SnapshotChecksum(zeros.data(), 56));
}

TEST_F(SnapshotTest, FingerprintTracksSourceIdentity) {
  auto fp1 = FingerprintSource(csv_);
  ASSERT_TRUE(fp1.ok()) << fp1.status();
  auto fp2 = FingerprintSource(csv_);
  ASSERT_TRUE(fp2.ok());
  EXPECT_TRUE(*fp1 == *fp2);

  // Appending a row moves size (and the tail hash).
  auto contents = ReadFileToString(csv_);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteStringToFile(csv_, *contents + "1,2,3,4,5\n").ok());
  auto fp3 = FingerprintSource(csv_);
  ASSERT_TRUE(fp3.ok());
  EXPECT_FALSE(*fp1 == *fp3);
}

TEST_F(SnapshotTest, WarmReopenAnswersWithoutTouchingRawFile) {
  std::vector<std::string> expected;
  {
    auto db = OpenDb(SnapConfig());
    Warm(db.get());
    for (const std::string& sql : Queries()) {
      for (std::string& row : Rows(db.get(), sql)) {
        expected.push_back(std::move(row));
      }
    }
    auto saved = db->Snapshot("t");
    ASSERT_TRUE(saved.ok()) << saved.status();
    EXPECT_GT(*saved, 0u);
  }

  auto db = OpenDb(SnapConfig());
  TableInfo info = InfoOf(db.get());
  EXPECT_EQ(info.snapshot_state, SnapshotState::kLoaded);
  EXPECT_GT(info.snapshot_bytes, 0u);
  EXPECT_EQ(db->snapshot_counters().loads, 1u);
  // Restored state makes the table warm before any query: row count and
  // statistics are already known.
  EXPECT_GE(db->GetRowCount("t"), 0);
  EXPECT_EQ(static_cast<uint64_t>(db->GetRowCount("t")), spec_.rows);
  EXPECT_NE(db->GetTableStats("t"), nullptr);

  // The headline guarantee: answering from the restored structures reads
  // zero bytes of the raw file (fingerprinting used a private handle).
  const uint64_t before = InfoOf(db.get()).bytes_read;
  std::vector<std::string> actual;
  for (const std::string& sql : Queries()) {
    for (std::string& row : Rows(db.get(), sql)) {
      actual.push_back(std::move(row));
    }
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(InfoOf(db.get()).bytes_read, before);
}

TEST_F(SnapshotTest, MissingSnapshotCountsAsMiss) {
  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kNone);
  EXPECT_EQ(db->snapshot_counters().load_misses, 1u);
  ExpectColdEquivalent(db.get());
}

TEST_F(SnapshotTest, MutatedSourceInvalidatesSnapshot) {
  WriteWarmSnapshot();

  // Append one row: size, mtime and tail hash all move.
  auto contents = ReadFileToString(csv_);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteStringToFile(csv_, *contents + "7,7,7,7,7\n").ok());

  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kStale);
  EXPECT_EQ(db->snapshot_counters().load_stale, 1u);
  EXPECT_EQ(db->snapshot_counters().loads, 0u);
  // The stale snapshot restored nothing: answers over the mutated file are
  // identical to a never-snapshotted engine's (including the new row).
  ExpectColdEquivalent(db.get());
  auto count = db->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int64(),
            static_cast<int64_t>(spec_.rows) + 1);
}

TEST_F(SnapshotTest, InPlaceEditSameSizeInvalidatesSnapshot) {
  WriteWarmSnapshot();

  // Flip one digit without changing the file size: mtime and the sample
  // hash catch it.
  auto contents = ReadFileToString(csv_);
  ASSERT_TRUE(contents.ok());
  std::string edited = *contents;
  size_t pos = edited.find_first_of("0123456789");
  ASSERT_NE(pos, std::string::npos);
  edited[pos] = edited[pos] == '9' ? '8' : static_cast<char>(edited[pos] + 1);
  ASSERT_TRUE(WriteStringToFile(csv_, edited).ok());

  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kStale);
  ExpectColdEquivalent(db.get());
}

TEST_F(SnapshotTest, CorruptionCorpusDegradesToCold) {
  std::string path = WriteWarmSnapshot();
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  const std::string& good = *pristine;
  ASSERT_GT(good.size(), 64u);

  struct Case {
    std::string name;
    std::string bytes;
  };
  std::vector<Case> corpus;
  corpus.push_back({"empty", ""});
  corpus.push_back({"trunc-mid-header", good.substr(0, 13)});
  corpus.push_back({"trunc-at-header", good.substr(0, 40)});
  corpus.push_back({"trunc-early-payload", good.substr(0, 96)});
  corpus.push_back({"trunc-half", good.substr(0, good.size() / 2)});
  corpus.push_back({"trunc-last-byte", good.substr(0, good.size() - 1)});
  // Bit flips: magic, version, payload_size, checksum, fingerprint region,
  // mid-payload, tail. (Header flags/reserved are deliberately not in the
  // corpus: they are ignored by design, so flipping them still loads.)
  for (size_t offset : {size_t{0}, size_t{9}, size_t{17}, size_t{25},
                        size_t{45}, good.size() / 2, good.size() - 2}) {
    Case c;
    c.name = "flip-" + std::to_string(offset);
    c.bytes = good;
    c.bytes[offset] ^= 0x10;
    corpus.push_back(std::move(c));
  }

  for (const Case& c : corpus) {
    SCOPED_TRACE(c.name);
    ASSERT_TRUE(WriteStringToFile(path, c.bytes).ok());
    auto db = OpenDb(SnapConfig());
    TableInfo info = InfoOf(db.get());
    // Never loads; classification is corrupt except for the version flip,
    // which reads as a (valid) future-version file -> stale.
    EXPECT_NE(info.snapshot_state, SnapshotState::kLoaded);
    EXPECT_EQ(db->snapshot_counters().loads, 0u);
    ExpectColdEquivalent(db.get());
  }

  // The pristine bytes still load — the corpus loop really was testing
  // corruption, not some unrelated staleness.
  ASSERT_TRUE(WriteStringToFile(path, good).ok());
  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
}

TEST_F(SnapshotTest, SchemaChangeIsStaleNotCorrupt) {
  WriteWarmSnapshot();

  // Reopen declaring a3 as a string: the snapshot decodes cleanly under its
  // own recorded schema, then classifies as stale.
  Schema changed = MicroSchema(spec_);
  auto db = std::make_unique<Database>(SnapConfig());
  Schema edited{{"a1", TypeId::kInt64},
                {"a2", TypeId::kInt64},
                {"a3", TypeId::kString},
                {"a4", TypeId::kInt64},
                {"a5", TypeId::kInt64}};
  ASSERT_TRUE(db->RegisterCsv("t", csv_, edited).ok());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kStale);
  EXPECT_EQ(db->snapshot_counters().load_stale, 1u);
  auto result = db->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64(), static_cast<int64_t>(spec_.rows));
}

TEST_F(SnapshotTest, StripeSizeChangeIsStale) {
  WriteWarmSnapshot();
  EngineConfig cfg = SnapConfig();
  cfg.tuples_per_chunk = 1024;  // snapshot was taken at 4096
  auto db = OpenDb(cfg);
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kStale);
  ExpectColdEquivalent(db.get());
}

TEST_F(SnapshotTest, BudgetConstrainedLoadDeclinesGracefully) {
  WriteWarmSnapshot();
  EngineConfig cfg = SnapConfig();
  cfg.pm_budget_bytes = 16 * 1024;    // far below the exported positions
  cfg.cache_budget_bytes = 8 * 1024;  // forces cache eviction during load
  auto db = OpenDb(cfg);
  // The load still counts as a load (fingerprint valid, install ran); the
  // budget simply declined most chunks — and answers stay correct.
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  ExpectColdEquivalent(db.get());
}

TEST_F(SnapshotTest, CacheOnlyAndPmapOnlyVariantsRoundTrip) {
  for (SystemUnderTest sut : {SystemUnderTest::kPostgresRawPM,
                              SystemUnderTest::kPostgresRawC}) {
    SCOPED_TRACE(static_cast<int>(sut));
    TempDir variant_dir;
    EngineConfig cfg = EngineConfig::ForSystem(sut);
    cfg.snapshot_dir = variant_dir.File("snaps");
    {
      auto db = std::make_unique<Database>(cfg);
      ASSERT_TRUE(db->RegisterCsv("t", csv_, MicroSchema(spec_)).ok());
      Warm(db.get());
      auto saved = db->Snapshot("t");
      ASSERT_TRUE(saved.ok()) << saved.status();
    }
    auto db = std::make_unique<Database>(cfg);
    ASSERT_TRUE(db->RegisterCsv("t", csv_, MicroSchema(spec_)).ok());
    EXPECT_EQ(db->snapshot_counters().loads, 1u);
    ExpectColdEquivalent(db.get());
  }
}

TEST_F(SnapshotTest, ExplicitSnapshotErrors) {
  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(db->Snapshot("missing").status().code(), StatusCode::kNotFound);

  // No snapshot directory configured.
  auto plain = OpenDb(BaseConfig());
  EXPECT_EQ(plain->Snapshot("t").status().code(),
            StatusCode::kInvalidArgument);

  // Loaded tables have no raw source to fingerprint.
  EngineConfig loaded_cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgreSQL);
  loaded_cfg.snapshot_dir = snap_dir_;
  loaded_cfg.data_dir = dir_.path();
  Database loaded(loaded_cfg);
  ASSERT_TRUE(loaded.LoadCsv("t", csv_, MicroSchema(spec_)).ok());
  EXPECT_EQ(loaded.Snapshot("t").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, SnapshotAllSkipsUnchangedState) {
  auto db = OpenDb(SnapConfig());
  Warm(db.get());
  ASSERT_TRUE(db->SnapshotAll().ok());
  EXPECT_EQ(db->snapshot_counters().saves, 1u);
  // Second pass: nothing moved, nothing written.
  ASSERT_TRUE(db->SnapshotAll().ok());
  EXPECT_EQ(db->snapshot_counters().saves, 1u);
}

TEST_F(SnapshotTest, FreshlyLoadedStateIsNotResaved) {
  WriteWarmSnapshot();
  auto db = OpenDb(SnapConfig());
  ASSERT_EQ(db->snapshot_counters().loads, 1u);
  // The on-disk file already equals the restored state.
  ASSERT_TRUE(db->SnapshotAll().ok());
  EXPECT_EQ(db->snapshot_counters().saves, 0u);
}

TEST_F(SnapshotTest, BackgroundWriterPersistsWithoutQuiescing) {
  EngineConfig cfg = SnapConfig();
  cfg.snapshot_interval_ms = 25;
  std::string path = SnapshotPathFor(snap_dir_, "t");
  {
    auto db = OpenDb(cfg);
    Warm(db.get());
    // Queries keep running while the writer does its thing.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!FileExists(path) &&
           std::chrono::steady_clock::now() < deadline) {
      auto result = db->Execute("SELECT COUNT(*) FROM t");
      ASSERT_TRUE(result.ok()) << result.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(FileExists(path));
    EXPECT_GE(db->snapshot_counters().saves, 1u);
  }  // destructor joins the writer thread

  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(db->snapshot_counters().loads, 1u);
  ExpectColdEquivalent(db.get());
}

TEST_F(SnapshotTest, CrashLeftoverTempFileIsIgnored) {
  std::string path = WriteWarmSnapshot();
  // Simulate a crash mid-write: a temp file next to a valid snapshot.
  ASSERT_TRUE(WriteStringToFile(path + ".tmp.9999", "partial").ok());
  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
}

// ---------------------------------------------------------------------
// v3 gzip checkpoint-index section: a snapshot of a gz-served table also
// carries the decompression restart points, so a warm restart seeks
// instead of re-inflating from zero. The degradation ladder under test:
// a v2 file (no section) and a corrupt section both still load the
// pmap/cache/stats warm — only the index starts cold.
// ---------------------------------------------------------------------

class GzSnapshotTest : public SnapshotTest {
 protected:
  static constexpr uint64_t kInterval = 32 * 1024;

  void SetUp() override {
    SnapshotTest::SetUp();
    if (!InflateSupported()) GTEST_SKIP() << "built without zlib";
    auto content = ReadFileToString(csv_);
    ASSERT_TRUE(content.ok());
    gz_csv_ = csv_ + ".gz";
    ASSERT_TRUE(WriteStringToFile(gz_csv_, GzipCompress(*content)).ok());
  }

  EngineConfig GzSnapConfig() {
    EngineConfig cfg = SnapConfig();
    cfg.gz_checkpoint_bytes = kInterval;
    return cfg;
  }

  std::unique_ptr<Database> OpenGzDb(const EngineConfig& cfg) {
    auto db = std::make_unique<Database>(cfg);
    EXPECT_TRUE(db->RegisterCsv("t", gz_csv_, MicroSchema(spec_)).ok());
    return db;
  }

  const InflateFile* GzOf(Database* db) {
    return db->runtime("t")->adapter->file()->AsInflateFile();
  }

  /// The canonical serialized checkpoint index for gz_csv_ at kInterval,
  /// built on a private handle. Checkpoint placement is deterministic
  /// (same bytes, same interval, same zlib), so the engine's snapshot must
  /// embed exactly these bytes — which is what makes surgical removal of
  /// the section possible below.
  std::string ExpectedIndexBlob() {
    auto inner = RandomAccessFile::Open(gz_csv_);
    EXPECT_TRUE(inner.ok());
    InflateOptions opts;
    opts.checkpoint_interval_bytes = kInterval;
    auto gz = InflateFile::Open(std::move(*inner), opts);
    EXPECT_TRUE(gz.ok()) << gz.status();
    std::string buf((*gz)->size(), '\0');
    auto n = (*gz)->Read(0, buf.size(), buf.data());
    EXPECT_TRUE(n.ok()) << n.status();
    EXPECT_TRUE((*gz)->index_complete());
    return (*gz)->SerializeIndex();
  }

  /// The byte suffix the v3 gz section adds to a snapshot payload:
  /// [flag=1][u32 length][blob].
  std::string SectionSuffix(const std::string& blob) {
    std::string suffix(1, '\x01');
    uint32_t len = static_cast<uint32_t>(blob.size());
    char b[4];
    std::memcpy(b, &len, 4);
    suffix.append(b, 4);
    suffix += blob;
    return suffix;
  }

  /// Replaces the payload of the snapshot at `path` and re-stamps the
  /// header (version, payload size, checksum) so only the *target* of each
  /// test's surgery is invalid, never the envelope.
  void RestampSnapshot(const std::string& path, uint32_t version,
                       const std::string& payload) {
    std::string bytes = "NODBSNAP";
    auto put32 = [&bytes](uint32_t v) {
      char b[4];
      std::memcpy(b, &v, 4);
      bytes.append(b, 4);
    };
    auto put64 = [&bytes](uint64_t v) {
      char b[8];
      std::memcpy(b, &v, 8);
      bytes.append(b, 8);
    };
    put32(version);
    put32(0);  // flags
    put64(payload.size());
    put64(SnapshotChecksum(payload.data(), payload.size()));
    put64(0);  // reserved
    bytes += payload;
    ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  }

  std::string gz_csv_;
};

TEST_F(GzSnapshotTest, V3RoundTripRestoresCheckpointIndex) {
  std::vector<std::string> expected;
  {
    auto db = OpenGzDb(GzSnapConfig());
    Warm(db.get());
    ASSERT_TRUE(GzOf(db.get())->index_complete());
    EXPECT_GT(GzOf(db.get())->checkpoint_count(), 2u);
    for (const std::string& sql : Queries()) {
      for (std::string& row : Rows(db.get(), sql)) {
        expected.push_back(std::move(row));
      }
    }
    auto saved = db->Snapshot("t");
    ASSERT_TRUE(saved.ok()) << saved.status();
  }

  auto db = OpenGzDb(GzSnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  const InflateFile* gz = GzOf(db.get());
  // The index came back from the snapshot — complete before any scan.
  EXPECT_TRUE(gz->index_complete());
  EXPECT_GT(gz->checkpoint_count(), 2u);

  // Warm queries answer from the restored cache: zero decompressed payload
  // read, zero bytes inflated.
  const uint64_t payload_before = InfoOf(db.get()).bytes_read;
  const uint64_t inflated_before = gz->bytes_inflated();
  std::vector<std::string> actual;
  for (const std::string& sql : Queries()) {
    for (std::string& row : Rows(db.get(), sql)) {
      actual.push_back(std::move(row));
    }
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(InfoOf(db.get()).bytes_read, payload_before);
  EXPECT_EQ(gz->bytes_inflated(), inflated_before);

  // A directed read into the middle of the stream seeks via a restored
  // checkpoint: at most one interval (plus a deflate block) of inflation,
  // never a full re-inflate from zero.
  const uint64_t target = gz->size() * 7 / 10;
  char buf[256];
  auto n = gz->Read(target, sizeof(buf), buf);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GT(gz->checkpoint_restarts(), 0u);
  EXPECT_LE(gz->bytes_inflated() - inflated_before,
            kInterval + sizeof(buf) + 128 * 1024);
}

TEST_F(GzSnapshotTest, V2DowngradeLoadsWithColdIndex) {
  std::string path;
  {
    auto db = OpenGzDb(GzSnapConfig());
    Warm(db.get());
    auto saved = db->Snapshot("t");
    ASSERT_TRUE(saved.ok()) << saved.status();
    path = SnapshotPathFor(snap_dir_, "t");
  }
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string payload = raw->substr(40);
  const std::string suffix = SectionSuffix(ExpectedIndexBlob());
  ASSERT_GE(payload.size(), suffix.size());
  ASSERT_EQ(payload.substr(payload.size() - suffix.size()), suffix)
      << "the v3 file does not end with the canonical gz section";
  // Strip the section and downgrade the version: a v2 file, as an older
  // build would have written.
  payload.resize(payload.size() - suffix.size());
  RestampSnapshot(path, 2, payload);

  auto db = OpenGzDb(GzSnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  EXPECT_EQ(db->snapshot_counters().loads, 1u);
  // Warm structures restored; only the checkpoint index starts cold.
  EXPECT_EQ(static_cast<uint64_t>(db->GetRowCount("t")), spec_.rows);
  EXPECT_FALSE(GzOf(db.get())->index_complete());
  EXPECT_EQ(GzOf(db.get())->checkpoint_count(), 0u);
  ExpectColdEquivalent(db.get());
}

TEST_F(GzSnapshotTest, CorruptIndexSectionDegradesToReinflateNotCold) {
  std::string path;
  {
    auto db = OpenGzDb(GzSnapConfig());
    Warm(db.get());
    auto saved = db->Snapshot("t");
    ASSERT_TRUE(saved.ok()) << saved.status();
    path = SnapshotPathFor(snap_dir_, "t");
  }
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string payload = raw->substr(40);
  const std::string blob = ExpectedIndexBlob();
  ASSERT_GT(blob.size(), 16u);
  ASSERT_GE(payload.size(), blob.size());
  // Flip one byte in the middle of the embedded index and re-stamp the
  // envelope checksum, so only InflateFile's own validation can catch it.
  payload[payload.size() - blob.size() / 2] ^= 0x20;
  RestampSnapshot(path, 3, payload);

  auto db = OpenGzDb(GzSnapConfig());
  // The table is NOT cold: everything else in the snapshot installed.
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  EXPECT_EQ(db->snapshot_counters().loads, 1u);
  EXPECT_EQ(static_cast<uint64_t>(db->GetRowCount("t")), spec_.rows);
  // The rejected index degrades to re-inflation from zero, never to a
  // wrong seek: no checkpoints installed.
  EXPECT_FALSE(GzOf(db.get())->index_complete());
  EXPECT_EQ(GzOf(db.get())->checkpoint_count(), 0u);
  ExpectColdEquivalent(db.get());
}

}  // namespace
}  // namespace nodb
