#include <gtest/gtest.h>

#include "csv/parser.h"
#include "raw/line_reader.h"
#include "csv/tokenizer.h"
#include "csv/writer.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

const CsvDialect kPlain;  // comma, no quoting

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

TEST(TokenizerTest, TokenizeStartsFull) {
  std::string_view line = "aa,b,,dddd";
  uint32_t starts[4];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 3, starts), 4);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 3u);
  EXPECT_EQ(starts[2], 5u);
  EXPECT_EQ(starts[3], 6u);
}

TEST(TokenizerTest, SelectiveStopsEarly) {
  // Selective tokenizing: asking for fields 0..1 must not scan field 3.
  std::string_view line = "a,b,c,d";
  uint32_t starts[2];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 1, starts), 2);
  EXPECT_EQ(starts[1], 2u);
}

TEST(TokenizerTest, ShortLineReturnsFewer) {
  std::string_view line = "a,b";
  uint32_t starts[5];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 4, starts), 2);
}

TEST(TokenizerTest, EmptyLineOneField) {
  uint32_t starts[1];
  EXPECT_EQ(TokenizeStarts("", kPlain, 0, starts), 1);
  EXPECT_EQ(CountFields("", kPlain), 1);
}

TEST(TokenizerTest, CountFields) {
  EXPECT_EQ(CountFields("a,b,c", kPlain), 3);
  EXPECT_EQ(CountFields(",,", kPlain), 3);
  EXPECT_EQ(CountFields("x", kPlain), 1);
}

TEST(TokenizerTest, FieldEndAt) {
  std::string_view line = "aa,bbb,c";
  EXPECT_EQ(FieldEndAt(line, kPlain, 0), 2u);
  EXPECT_EQ(FieldEndAt(line, kPlain, 3), 6u);
  EXPECT_EQ(FieldEndAt(line, kPlain, 7), 8u);  // last field ends at line end
}

TEST(TokenizerTest, FindFieldForward) {
  std::string_view line = "a,bb,ccc,dddd,e";
  // From field 1 (offset 2), find field 3.
  EXPECT_EQ(FindFieldForward(line, kPlain, 1, 2, 3), 9u);
  // Same field returns the input offset.
  EXPECT_EQ(FindFieldForward(line, kPlain, 2, 5, 2), 5u);
  // Past the end of the line.
  EXPECT_EQ(FindFieldForward(line, kPlain, 0, 0, 9), kInvalidOffset);
}

TEST(TokenizerTest, FindFieldBackward) {
  std::string_view line = "a,bb,ccc,dddd,e";
  // Field starts: 0:0 1:2 2:5 3:9 4:14.
  EXPECT_EQ(FindFieldBackward(line, kPlain, 4, 14, 2), 5u);
  EXPECT_EQ(FindFieldBackward(line, kPlain, 3, 9, 1), 2u);
  EXPECT_EQ(FindFieldBackward(line, kPlain, 3, 9, 0), 0u);
}

TEST(TokenizerTest, ForwardBackwardAgree) {
  // Property: for random lines, backward from any anchor equals forward
  // from the line start.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    int nfields = 2 + static_cast<int>(rng.Uniform(0, 10));
    std::string line;
    std::vector<uint32_t> starts;
    for (int f = 0; f < nfields; ++f) {
      if (f > 0) line += ",";
      starts.push_back(static_cast<uint32_t>(line.size()));
      int len = static_cast<int>(rng.Uniform(0, 6));
      for (int i = 0; i < len; ++i) line += 'x';
    }
    for (int from = 1; from < nfields; ++from) {
      for (int to = 0; to < from; ++to) {
        EXPECT_EQ(FindFieldBackward(line, kPlain, from, starts[from], to),
                  starts[to])
            << line << " from=" << from << " to=" << to;
      }
    }
  }
}

TEST(TokenizerTest, QuotedFieldWithEmbeddedDelimiter) {
  CsvDialect quoted;
  quoted.quoting = true;
  std::string_view line = "a,\"x,y\",c";
  uint32_t starts[3];
  EXPECT_EQ(TokenizeStarts(line, quoted, 2, starts), 3);
  EXPECT_EQ(starts[1], 2u);
  EXPECT_EQ(starts[2], 8u);
  EXPECT_EQ(CountFields(line, quoted), 3);
}

TEST(TokenizerTest, QuotedFieldWithEscapedQuote) {
  CsvDialect quoted;
  quoted.quoting = true;
  std::string_view line = "\"he said \"\"hi\"\",ok\",b";
  EXPECT_EQ(CountFields(line, quoted), 2);
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Edge cases: quoting, CRLF, ragged and malformed records
// ---------------------------------------------------------------------

TEST(TokenizerTest, QuotedFieldWithEmbeddedNewline) {
  // A record view may contain a literal newline inside a quoted field; the
  // tokenizer must treat it as field content, not a record boundary.
  CsvDialect quoted;
  quoted.quoting = true;
  std::string_view line = "1,\"first\nsecond\",3";
  EXPECT_EQ(CountFields(line, quoted), 3);
  uint32_t starts[3];
  EXPECT_EQ(TokenizeStarts(line, quoted, 2, starts), 3);
  EXPECT_EQ(starts[1], 2u);
  EXPECT_EQ(starts[2], 17u);
  EXPECT_EQ(FieldEndAt(line, quoted, starts[1]), 16u);
}

TEST(TokenizerTest, QuotedFieldWithEmbeddedDelimitersEverywhere) {
  CsvDialect quoted;
  quoted.quoting = true;
  std::string_view line = "\",lead\",mid,\"tr,ail,\"";
  EXPECT_EQ(CountFields(line, quoted), 3);
  uint32_t starts[3];
  EXPECT_EQ(TokenizeStarts(line, quoted, 2, starts), 3);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 8u);
  EXPECT_EQ(starts[2], 12u);
  EXPECT_EQ(FieldEndAt(line, quoted, starts[2]), line.size());
}

TEST(TokenizerTest, UnclosedQuoteConsumesRestOfLine) {
  // Malformed input: an opening quote that never closes. The tokenizer must
  // terminate (no scan past the view) and treat the remainder as one field.
  CsvDialect quoted;
  quoted.quoting = true;
  std::string_view line = "a,\"never closed,b,c";
  EXPECT_EQ(CountFields(line, quoted), 2);
  uint32_t starts[4];
  EXPECT_EQ(TokenizeStarts(line, quoted, 3, starts), 2);
  EXPECT_EQ(FieldEndAt(line, quoted, starts[1]), line.size());
}

TEST(TokenizerTest, TrailingDelimiterYieldsEmptyLastField) {
  std::string_view line = "a,b,";
  EXPECT_EQ(CountFields(line, kPlain), 3);
  uint32_t starts[3];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 2, starts), 3);
  EXPECT_EQ(starts[2], 4u);
  EXPECT_EQ(FieldEndAt(line, kPlain, starts[2]), 4u);  // empty field
}

TEST(TokenizerTest, AllFieldsEmpty) {
  std::string_view line = ",,,";
  EXPECT_EQ(CountFields(line, kPlain), 4);
  uint32_t starts[4];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 3, starts), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(starts[i], static_cast<uint32_t>(i));
    EXPECT_EQ(FieldEndAt(line, kPlain, starts[i]), static_cast<uint32_t>(i));
  }
}

TEST(TokenizerTest, RequestBeyondLastFieldReturnsFewer) {
  std::string_view line = "x,y";
  uint32_t starts[6];
  EXPECT_EQ(TokenizeStarts(line, kPlain, 5, starts), 2);
  EXPECT_EQ(FindFieldForward(line, kPlain, 0, 0, 4), kInvalidOffset);
}

TEST(ParserTest, QuotedNumericFieldParses) {
  CsvDialect quoted;
  quoted.quoting = true;
  auto v = ParseCsvField("\"42\"", TypeId::kInt64, quoted);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64(), 42);
  auto d = ParseCsvField("\"2.5\"", TypeId::kDouble, quoted);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->f64(), 2.5);
}

TEST(ParserTest, QuotedFieldWithEscapedQuotesAndDelimiter) {
  CsvDialect quoted;
  quoted.quoting = true;
  auto v = ParseCsvField("\"he said \"\"hi, there\"\"\"", TypeId::kString,
                         quoted);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str(), "he said \"hi, there\"");
}

TEST(ParserTest, QuotedEmptyFieldIsNull) {
  CsvDialect quoted;
  quoted.quoting = true;
  auto v = ParseCsvField("\"\"", TypeId::kString, quoted);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ParserTest, MalformedFieldsError) {
  EXPECT_FALSE(ParseCsvField("abc", TypeId::kInt64, kPlain).ok());
  EXPECT_FALSE(ParseCsvField("1.2.3", TypeId::kDouble, kPlain).ok());
  EXPECT_FALSE(ParseCsvField("2023-13-40", TypeId::kDate, kPlain).ok());
  EXPECT_FALSE(ParseCsvField("12x", TypeId::kInt64, kPlain).ok());
}

TEST(ParserTest, ParseTypedFields) {
  EXPECT_EQ(ParseCsvField("42", TypeId::kInt64, kPlain)->int64(), 42);
  EXPECT_DOUBLE_EQ(ParseCsvField("2.5", TypeId::kDouble, kPlain)->f64(), 2.5);
  EXPECT_EQ(ParseCsvField("abc", TypeId::kString, kPlain)->str(), "abc");
  EXPECT_EQ(ParseCsvField("1970-01-03", TypeId::kDate, kPlain)->date(), 2);
}

TEST(ParserTest, EmptyFieldIsNull) {
  EXPECT_TRUE(ParseCsvField("", TypeId::kInt64, kPlain)->is_null());
}

TEST(ParserTest, UnquoteField) {
  CsvDialect quoted;
  quoted.quoting = true;
  std::string scratch;
  EXPECT_EQ(UnquoteField("plain", quoted, &scratch), "plain");
  EXPECT_EQ(UnquoteField("\"a,b\"", quoted, &scratch), "a,b");
  EXPECT_EQ(UnquoteField("\"a\"\"b\"", quoted, &scratch), "a\"b");
  // Quoting disabled: quotes are literal content.
  EXPECT_EQ(UnquoteField("\"x\"", kPlain, &scratch), "\"x\"");
}

// ---------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------

class ScannerTest : public ::testing::Test {
 protected:
  std::unique_ptr<RandomAccessFile> WriteAndOpen(const std::string& content) {
    path_ = dir_.File("data.csv");
    EXPECT_TRUE(WriteStringToFile(path_, content).ok());
    auto f = RandomAccessFile::Open(path_);
    EXPECT_TRUE(f.ok());
    return std::move(*f);
  }
  TempDir dir_;
  std::string path_;
};

TEST_F(ScannerTest, BasicLines) {
  auto file = WriteAndOpen("a,b\nc,d\ne,f\n");
  LineReader scanner(file.get());
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "a,b");
  EXPECT_EQ(line.offset, 0u);
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "c,d");
  EXPECT_EQ(line.offset, 4u);
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "e,f");
  EXPECT_FALSE(*scanner.Next(&line));
}

TEST_F(ScannerTest, FinalLineWithoutNewline) {
  auto file = WriteAndOpen("a\nb");
  LineReader scanner(file.get());
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "a");
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "b");
  EXPECT_FALSE(*scanner.Next(&line));
}

TEST_F(ScannerTest, CrLfStripped) {
  auto file = WriteAndOpen("a,b\r\nc,d\r\n");
  LineReader scanner(file.get());
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "a,b");
}

TEST_F(ScannerTest, MixedLineEndingsAndFinalCrWithoutNewline) {
  auto file = WriteAndOpen("a,b\r\nc,d\ne,f\r");
  LineReader scanner(file.get());
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "a,b");
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "c,d");
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "e,f");
  EXPECT_FALSE(*scanner.Next(&line));
}

TEST_F(ScannerTest, EmptyFile) {
  auto file = WriteAndOpen("");
  LineReader scanner(file.get());
  RecordRef line;
  EXPECT_FALSE(*scanner.Next(&line));
}

TEST_F(ScannerTest, LinesLongerThanBuffer) {
  std::string big(10000, 'x');
  auto file = WriteAndOpen("short\n" + big + "\nend\n");
  LineReader scanner(file.get(), 4096);  // buffer smaller than the long line
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "short");
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data.size(), big.size());
  EXPECT_EQ(line.data, big);
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "end");
}

TEST_F(ScannerTest, SeekToLineStart) {
  auto file = WriteAndOpen("aa\nbb\ncc\n");
  LineReader scanner(file.get());
  RecordRef line;
  ASSERT_TRUE(*scanner.Next(&line));
  scanner.SeekTo(6);  // start of "cc"
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "cc");
  EXPECT_EQ(line.offset, 6u);
  // Seek backwards too.
  scanner.SeekTo(3);
  ASSERT_TRUE(*scanner.Next(&line));
  EXPECT_EQ(line.data, "bb");
}

TEST_F(ScannerTest, ManyLinesAcrossRefills) {
  std::string content;
  for (int i = 0; i < 5000; ++i) {
    content += "line" + std::to_string(i) + ",val\n";
  }
  auto file = WriteAndOpen(content);
  LineReader scanner(file.get(), 4096);
  RecordRef line;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(*scanner.Next(&line)) << i;
    EXPECT_EQ(line.data, "line" + std::to_string(i) + ",val");
  }
  EXPECT_FALSE(*scanner.Next(&line));
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

TEST_F(ScannerTest, WriterRoundTrip) {
  std::string path = dir_.File("out.csv");
  Schema schema{{"a", TypeId::kInt64}, {"b", TypeId::kString},
                {"d", TypeId::kDate}};
  {
    auto out = WritableFile::Create(path);
    ASSERT_TRUE(out.ok());
    CsvWriter writer(out->get(), kPlain);
    ASSERT_TRUE(writer.WriteHeader(schema).ok());
    ASSERT_TRUE(writer
                    .WriteRow({Value::Int64(1), Value::String("x"),
                               Value::Date(3)})
                    .ok());
    ASSERT_TRUE(writer
                    .WriteRow({Value::Null(TypeId::kInt64), Value::String(""),
                               Value::Null(TypeId::kDate)})
                    .ok());
    ASSERT_TRUE(writer.Finish().ok());
    ASSERT_TRUE((*out)->Close().ok());
  }
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "a,b,d\n1,x,1970-01-04\n,,\n");
}

TEST_F(ScannerTest, WriterQuotesWhenNeeded) {
  std::string path = dir_.File("out.csv");
  CsvDialect quoted;
  quoted.quoting = true;
  auto out = WritableFile::Create(path);
  CsvWriter writer(out->get(), quoted);
  ASSERT_TRUE(writer.WriteFields({"a,b", "he said \"hi\"", "plain"}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
  EXPECT_EQ(*ReadFileToString(path),
            "\"a,b\",\"he said \"\"hi\"\"\",plain\n");
}

}  // namespace
}  // namespace nodb
