#include "stats/table_stats.h"

namespace nodb {

TableStats::TableStats(const Schema& schema) {
  builders_.reserve(schema.num_columns());
  for (int i = 0; i < schema.num_columns(); ++i) {
    builders_.push_back(
        std::make_unique<AttrStatsBuilder>(schema.column(i).type));
  }
  built_.resize(schema.num_columns());
}

void TableStats::Finalize(int attr) {
  if (builders_[attr]->has_data()) {
    built_[attr] = builders_[attr]->Build();
  }
}

void TableStats::FinalizeAll() {
  for (int i = 0; i < num_attrs(); ++i) Finalize(i);
}

}  // namespace nodb
