#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/compact_table.h"
#include "storage/heap_file.h"
#include "storage/loader.h"
#include "storage/page.h"
#include "storage/table_heap.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

// ---------------------------------------------------------------------
// SlottedPage
// ---------------------------------------------------------------------

TEST(SlottedPageTest, InsertAndGet) {
  std::vector<char> frame(kPageSize);
  SlottedPage page(frame.data());
  page.Init(7);
  EXPECT_EQ(page.page_id(), 7u);
  int s0 = page.InsertTuple("hello");
  int s1 = page.InsertTuple("world!");
  ASSERT_EQ(s0, 0);
  ASSERT_EQ(s1, 1);
  EXPECT_EQ(page.GetTuple(0), "hello");
  EXPECT_EQ(page.GetTuple(1), "world!");
  EXPECT_EQ(page.slot_count(), 2);
  EXPECT_EQ(page.GetFlags(0), SlottedPage::kNormal);
}

TEST(SlottedPageTest, FillsUntilFull) {
  std::vector<char> frame(kPageSize);
  SlottedPage page(frame.data());
  page.Init(0);
  std::string tuple(100, 'x');
  int inserted = 0;
  while (page.InsertTuple(tuple) >= 0) ++inserted;
  // 8192 bytes / (100 payload + 8 slot) ~ 75 tuples.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  // Free space is less than one more tuple.
  EXPECT_LT(page.FreeSpace(), tuple.size());
}

TEST(SlottedPageTest, MaxInlinePayloadFits) {
  std::vector<char> frame(kPageSize);
  SlottedPage page(frame.data());
  page.Init(0);
  std::string big(SlottedPage::MaxInlinePayload(), 'y');
  EXPECT_GE(page.InsertTuple(big), 0);
  EXPECT_LT(page.InsertTuple("x"), 0);  // nothing else fits
}

// ---------------------------------------------------------------------
// HeapFile + BufferPool
// ---------------------------------------------------------------------

TEST(HeapFileTest, AllocateWriteRead) {
  TempDir dir;
  auto file = HeapFile::Create(dir.File("h"));
  ASSERT_TRUE(file.ok());
  auto id0 = (*file)->AllocatePage();
  auto id1 = (*file)->AllocatePage();
  ASSERT_TRUE(id0.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  std::vector<char> frame(kPageSize, 'a');
  ASSERT_TRUE((*file)->WritePage(1, frame.data()).ok());
  std::vector<char> read(kPageSize);
  ASSERT_TRUE((*file)->ReadPage(1, read.data()).ok());
  EXPECT_EQ(read, frame);
  EXPECT_FALSE((*file)->ReadPage(5, read.data()).ok());
}

TEST(HeapFileTest, ReopenSeesPages) {
  TempDir dir;
  std::string path = dir.File("h");
  {
    auto file = HeapFile::Create(path);
    ASSERT_TRUE((*file)->AllocatePage().ok());
    ASSERT_TRUE((*file)->AllocatePage().ok());
  }
  auto reopened = HeapFile::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 2u);
}

TEST(BufferPoolTest, HitsAndEviction) {
  TempDir dir;
  auto file = HeapFile::Create(dir.File("h"));
  std::vector<char> frame(kPageSize);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*file)->AllocatePage().ok());
    frame[0] = static_cast<char>('a' + i);
    ASSERT_TRUE((*file)->WritePage(i, frame.data()).ok());
  }
  BufferPool pool(file->get(), 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // hit
  EXPECT_EQ(pool.hits(), 1u);
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(2).ok());  // evicts page 0
  auto page0 = pool.Fetch(0);       // miss again
  ASSERT_TRUE(page0.ok());
  EXPECT_EQ((*page0)[0], 'a');
  EXPECT_EQ(pool.misses(), 4u);
}

// ---------------------------------------------------------------------
// TableHeap
// ---------------------------------------------------------------------

Schema TestSchema() {
  return Schema{{"id", TypeId::kInt64},
                {"name", TypeId::kString},
                {"score", TypeId::kDouble},
                {"day", TypeId::kDate},
                {"ok", TypeId::kBool}};
}

Row TestRow(int i) {
  return {Value::Int64(i), Value::String("name" + std::to_string(i)),
          Value::Double(i * 0.5), Value::Date(1000 + i),
          Value::Bool(i % 2 == 0)};
}

TEST(TableHeapTest, SerializeDeserializeRoundTrip) {
  TempDir dir;
  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  ASSERT_TRUE(heap.ok());
  std::string bytes;
  Row original = TestRow(3);
  (*heap)->SerializeRow(original, &bytes);
  Row decoded;
  std::vector<bool> needed(5, true);
  ASSERT_TRUE((*heap)->DeserializeRow(bytes, needed, &decoded).ok());
  EXPECT_EQ(decoded, original);
}

TEST(TableHeapTest, NullBitmapRoundTrip) {
  TempDir dir;
  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  Row original = {Value::Null(TypeId::kInt64), Value::String("x"),
                  Value::Null(TypeId::kDouble), Value::Date(5),
                  Value::Null(TypeId::kBool)};
  std::string bytes;
  (*heap)->SerializeRow(original, &bytes);
  Row decoded;
  ASSERT_TRUE(
      (*heap)->DeserializeRow(bytes, std::vector<bool>(5, true), &decoded)
          .ok());
  EXPECT_EQ(decoded, original);
}

TEST(TableHeapTest, ProjectionSkipsUnneeded) {
  TempDir dir;
  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  std::string bytes;
  (*heap)->SerializeRow(TestRow(1), &bytes);
  Row decoded;
  std::vector<bool> needed = {false, true, false, false, false};
  ASSERT_TRUE((*heap)->DeserializeRow(bytes, needed, &decoded).ok());
  EXPECT_TRUE(decoded[0].is_null());
  EXPECT_EQ(decoded[1].str(), "name1");
}

TEST(TableHeapTest, AppendScanManyRows) {
  TempDir dir;
  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  constexpr int kRows = 5000;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE((*heap)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*heap)->FinishLoad().ok());
  EXPECT_EQ((*heap)->row_count(), static_cast<uint64_t>(kRows));

  TableHeap::Scanner scanner(heap->get(), std::vector<bool>(5, true));
  Row row;
  for (int i = 0; i < kRows; ++i) {
    auto has = scanner.Next(&row);
    ASSERT_TRUE(has.ok() && *has) << i;
    EXPECT_EQ(row[0].int64(), i);
    EXPECT_EQ(row[1].str(), "name" + std::to_string(i));
  }
  EXPECT_FALSE(*scanner.Next(&row));
}

TEST(TableHeapTest, WideTuplesUseOverflowChains) {
  // Tuples bigger than a page must round-trip via overflow pages — the
  // slotted-page behaviour behind the paper's Fig. 13.
  TempDir dir;
  Schema schema{{"id", TypeId::kInt64}, {"blob", TypeId::kString}};
  auto heap = TableHeap::Create(dir.File("w.heap"), schema, {});
  std::string blob(3 * kPageSize, 'z');
  for (int i = 0; i < 10; ++i) {
    blob[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(
        (*heap)->Append({Value::Int64(i), Value::String(blob)}).ok());
  }
  ASSERT_TRUE((*heap)->FinishLoad().ok());
  TableHeap::Scanner scanner(heap->get(), std::vector<bool>(2, true));
  Row row;
  for (int i = 0; i < 10; ++i) {
    auto has = scanner.Next(&row);
    ASSERT_TRUE(has.ok() && *has) << i;
    EXPECT_EQ(row[0].int64(), i);
    EXPECT_EQ(row[1].str().size(), blob.size());
    EXPECT_EQ(row[1].str()[0], 'a' + i);
  }
  EXPECT_FALSE(*scanner.Next(&row));
}

TEST(TableHeapTest, ReopenPreservesRowCount) {
  TempDir dir;
  std::string path = dir.File("t.heap");
  {
    auto heap = TableHeap::Create(path, TestSchema(), {});
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*heap)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*heap)->FinishLoad().ok());
  }
  auto reopened = TableHeap::Open(path, TestSchema(), {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->row_count(), 100u);
  TableHeap::Scanner scanner(reopened->get(), std::vector<bool>(5, true));
  Row row;
  int count = 0;
  while (*scanner.Next(&row)) ++count;
  EXPECT_EQ(count, 100);
}

// ---------------------------------------------------------------------
// CompactTable
// ---------------------------------------------------------------------

TEST(CompactTableTest, AppendScanRoundTrip) {
  TempDir dir;
  auto table = CompactTable::Create(dir.File("t.cbt"), TestSchema());
  ASSERT_TRUE(table.ok());
  constexpr int kRows = 5000;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE((*table)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*table)->FinishLoad().ok());
  CompactTable::Scanner scanner(table->get(), std::vector<bool>(5, true));
  Row row;
  for (int i = 0; i < kRows; ++i) {
    auto has = scanner.Next(&row);
    ASSERT_TRUE(has.ok() && *has) << i;
    EXPECT_EQ(row[0].int64(), i);
    EXPECT_DOUBLE_EQ(row[2].f64(), i * 0.5);
  }
  EXPECT_FALSE(*scanner.Next(&row));
}

TEST(CompactTableTest, NullsAndProjection) {
  TempDir dir;
  auto table = CompactTable::Create(dir.File("t.cbt"), TestSchema());
  Row with_nulls = {Value::Int64(1), Value::Null(TypeId::kString),
                    Value::Double(0.5), Value::Null(TypeId::kDate),
                    Value::Bool(true)};
  ASSERT_TRUE((*table)->Append(with_nulls).ok());
  ASSERT_TRUE((*table)->FinishLoad().ok());
  CompactTable::Scanner scanner(table->get(),
                                {true, true, false, true, true});
  Row row;
  ASSERT_TRUE(*scanner.Next(&row));
  EXPECT_EQ(row[0].int64(), 1);
  EXPECT_TRUE(row[1].is_null());
  EXPECT_TRUE(row[2].is_null());  // skipped by projection
  EXPECT_TRUE(row[3].is_null());
  EXPECT_TRUE(row[4].boolean());
}

TEST(CompactTableTest, OpenAfterLoad) {
  TempDir dir;
  std::string path = dir.File("t.cbt");
  {
    auto table = CompactTable::Create(path, TestSchema());
    for (int i = 0; i < 42; ++i) {
      ASSERT_TRUE((*table)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*table)->FinishLoad().ok());
  }
  auto reopened = CompactTable::Open(path, TestSchema());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->row_count(), 42u);
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

TEST(LoaderTest, LoadsCsvIntoBothFormats) {
  TempDir dir;
  std::string csv = dir.File("data.csv");
  ASSERT_TRUE(WriteStringToFile(
                  csv, "1,alice,1.5,1970-01-02,true\n"
                       "2,bob,,1970-01-03,false\n"
                       "3,carol,3.5,,true\n")
                  .ok());

  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  auto heap_load = LoadCsvToHeap(csv, CsvDialect{}, heap->get());
  ASSERT_TRUE(heap_load.ok()) << heap_load.status();
  EXPECT_EQ(heap_load->rows, 3u);
  EXPECT_GT(heap_load->seconds, 0.0);

  auto compact = CompactTable::Create(dir.File("t.cbt"), TestSchema());
  auto compact_load = LoadCsvToCompact(csv, CsvDialect{}, compact->get());
  ASSERT_TRUE(compact_load.ok());
  EXPECT_EQ(compact_load->rows, 3u);

  // Contents agree between formats.
  TableHeap::Scanner hs(heap->get(), std::vector<bool>(5, true));
  CompactTable::Scanner cs(compact->get(), std::vector<bool>(5, true));
  Row hr, cr;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(*hs.Next(&hr));
    ASSERT_TRUE(*cs.Next(&cr));
    EXPECT_EQ(hr, cr) << "row " << i;
  }
}

TEST(LoaderTest, HeaderSkipped) {
  TempDir dir;
  std::string csv = dir.File("data.csv");
  ASSERT_TRUE(WriteStringToFile(csv, "id\n1\n2\n").ok());
  Schema schema{{"id", TypeId::kInt64}};
  auto heap = TableHeap::Create(dir.File("t.heap"), schema, {});
  CsvDialect dialect;
  dialect.has_header = true;
  auto load = LoadCsvToHeap(csv, dialect, heap->get());
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->rows, 2u);
}

TEST(LoaderTest, RaggedRowsPadWithNulls) {
  // Rows shorter than the schema load with NULL trailing attributes — the
  // same semantics the in-situ scan gives short rows, so differential
  // checks between loaded and raw engines stay meaningful on dirty files.
  TempDir dir;
  std::string csv = dir.File("ragged.csv");
  ASSERT_TRUE(WriteStringToFile(csv,
                                "1,alice,1.5,1970-01-02,true\n"
                                "2,bob\n"
                                "3\n")
                  .ok());
  auto heap = TableHeap::Create(dir.File("t.heap"), TestSchema(), {});
  auto load = LoadCsvToHeap(csv, CsvDialect{}, heap->get());
  ASSERT_TRUE(load.ok()) << load.status();
  EXPECT_EQ(load->rows, 3u);

  TableHeap::Scanner scanner(heap->get(), std::vector<bool>(5, true));
  Row row;
  ASSERT_TRUE(*scanner.Next(&row));
  EXPECT_FALSE(row[4].is_null());
  ASSERT_TRUE(*scanner.Next(&row));
  EXPECT_EQ(row[1].str(), "bob");
  EXPECT_TRUE(row[2].is_null());
  EXPECT_TRUE(row[3].is_null());
  EXPECT_TRUE(row[4].is_null());
  ASSERT_TRUE(*scanner.Next(&row));
  EXPECT_EQ(row[0].int64(), 3);
  EXPECT_TRUE(row[1].is_null());
}

TEST(LoaderTest, MalformedValueFailsCleanly) {
  TempDir dir;
  std::string csv = dir.File("bad.csv");
  ASSERT_TRUE(WriteStringToFile(csv, "1\nnot_a_number\n").ok());
  Schema schema{{"id", TypeId::kInt64}};
  auto heap = TableHeap::Create(dir.File("t.heap"), schema, {});
  auto load = LoadCsvToHeap(csv, CsvDialect{}, heap->get());
  EXPECT_FALSE(load.ok());
}

}  // namespace
}  // namespace nodb
