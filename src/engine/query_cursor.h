#ifndef NODB_ENGINE_QUERY_CURSOR_H_
#define NODB_ENGINE_QUERY_CURSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "exec/row_batch.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

struct SelectStmt;
struct BoundQuery;
struct PhysicalPlan;

/// Streaming handle to one executing query, returned by Database::Query.
/// The caller drains it batch-by-batch:
///
///   NODB_ASSIGN_OR_RETURN(QueryCursor cursor, db.Query(sql));
///   RowBatch batch = cursor.MakeBatch();
///   while (true) {
///     NODB_ASSIGN_OR_RETURN(size_t n, cursor.Next(&batch));
///     if (n == 0) break;
///     for (size_t i = 0; i < n; ++i) Consume(batch[i]);
///   }
///
/// Execution is lazy: the pipeline opens on the first Next call (hash-join
/// builds included), so cursor creation only pays for parse/bind/plan.
/// Nothing is ever materialized inside the cursor — a scan's raw-file reads
/// happen as batches are pulled, and abandoning the cursor early (Close, or
/// just destroying it) stops the scan where it stands and releases its
/// per-query resources. The cursor borrows the Database's table runtimes
/// and must not outlive the Database or the registered tables it reads.
class QueryCursor {
 public:
  QueryCursor(QueryCursor&&) noexcept;
  QueryCursor& operator=(QueryCursor&&) noexcept;
  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;
  /// Implicitly closes (ignoring any close error).
  ~QueryCursor();

  /// Output schema of the query (valid even after Close).
  const Schema& schema() const { return schema_; }
  /// EXPLAIN-style plan rendering (valid even after Close).
  const std::string& plan_text() const { return plan_text_; }
  /// The engine's configured rows-per-batch for this query.
  size_t batch_size() const { return batch_size_; }
  /// Catalog names of every table the query references (FROM tables plus
  /// EXISTS inner tables), in bind order; valid even after Close. The
  /// server's admission controller classifies queries cold/warm from this
  /// before the pipeline opens.
  const std::vector<std::string>& tables() const { return tables_; }
  /// The cancellation/deadline handle this cursor checks at every Next, or
  /// null when the query has neither (see QueryOptions). Flipping
  /// control()->cancelled from any thread makes the next batch boundary
  /// fail with a typed kCancelled error.
  const ExecControlPtr& control() const { return control_; }
  /// Convenience: a batch with this cursor's configured capacity.
  RowBatch MakeBatch() const { return RowBatch(batch_size_); }

  /// Clears `*batch` and fills it with the next <= batch->capacity() rows.
  /// Returns the number of rows produced; 0 means the result stream is
  /// exhausted (resources are released at that point, and every later call
  /// returns 0 again). Calling Next after an early explicit Close is an
  /// InvalidArgument error. An execution error poisons the cursor: the
  /// pipeline is released and subsequent calls fail as closed.
  Result<size_t> Next(RowBatch* batch);

  /// Releases the pipeline (scan files, hash tables) without draining the
  /// remaining rows. Idempotent; also run by the destructor.
  Status Close();

  /// True once Close ran or the stream was exhausted.
  bool closed() const { return pipeline_ == nullptr; }

 private:
  friend class Database;

  /// Releases the pipeline without the operator Close protocol (error
  /// paths, where the tree may be only half-opened).
  void Abandon();

  QueryCursor(std::unique_ptr<SelectStmt> stmt,
              std::unique_ptr<BoundQuery> query,
              std::unique_ptr<PhysicalPlan> plan, OperatorPtr pipeline,
              size_t batch_size, ExecControlPtr control);

  // The cursor owns the whole statement chain: operators hold pointers into
  // the plan, which holds pointers into the bound query.
  std::unique_ptr<SelectStmt> stmt_;
  std::unique_ptr<BoundQuery> query_;
  std::unique_ptr<PhysicalPlan> plan_;
  OperatorPtr pipeline_;
  bool opened_ = false;
  bool exhausted_ = false;

  Schema schema_;
  std::string plan_text_;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  std::vector<std::string> tables_;
  ExecControlPtr control_;
};

}  // namespace nodb

#endif  // NODB_ENGINE_QUERY_CURSOR_H_
