#ifndef NODB_EXEC_EXECUTOR_H_
#define NODB_EXEC_EXECUTOR_H_

#include <string>

#include "exec/insitu_scan.h"
#include "exec/query_result.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"
#include "util/result.h"

namespace nodb {

/// Maps catalog table names to their runtime state; implemented by the
/// engine's database object.
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  virtual Result<TableRuntime*> GetTableRuntime(const std::string& name) = 0;
};

/// Knobs threaded through to every scan the plan instantiates.
struct ExecOptions {
  InSituOptions insitu;
};

/// Builds the operator tree for `plan`, runs it to completion and returns
/// the materialized result. All engines (PostgresRaw analogue, loaded
/// baselines, external files) share this executor — mirroring the paper,
/// where PostgresRaw reuses PostgreSQL's engine and differs only in the
/// access methods.
Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                TableResolver* resolver,
                                const ExecOptions& options);

}  // namespace nodb

#endif  // NODB_EXEC_EXECUTOR_H_
