#ifndef NODB_RAW_LINE_READER_H_
#define NODB_RAW_LINE_READER_H_

#include <cstdint>
#include <vector>

#include "io/file.h"
#include "raw/raw_source.h"
#include "util/result.h"

namespace nodb {

struct ParseKernels;

/// Streaming newline-delimited record reader over a raw file, shared by
/// every text adapter (CSV, JSON Lines) and the bulk loader. Reads the file
/// in large chunks, splits on '\n' (an optional preceding '\r' is stripped),
/// and reassembles records that straddle chunk boundaries. The returned view
/// is valid until the next call to Next() or SeekTo().
class LineReader {
 public:
  static constexpr uint64_t kDefaultBufferSize = 1 << 20;

  /// `file` must outlive the reader. `kernels` selects the newline-scan
  /// kernel (null = ActiveKernels()).
  explicit LineReader(const RandomAccessFile* file,
                      uint64_t buffer_size = kDefaultBufferSize,
                      const ParseKernels* kernels = nullptr);

  /// Reads the next record into `*rec`; returns false at end of file.
  /// A final record without a trailing newline is returned.
  Result<bool> Next(RecordRef* rec);

  /// Repositions the reader at `offset`, which must be the first byte of a
  /// record (offset 0 or one past a '\n').
  void SeekTo(uint64_t offset);

  /// File offset of the byte that the next call to Next() starts reading at.
  uint64_t position() const { return next_offset_; }

 private:
  /// Ensures buffer_ holds the bytes at [buffer_start_, ...) covering
  /// next_offset_ with at least one byte (unless at EOF).
  Status Refill();

  const RandomAccessFile* file_;
  size_t (*find_newline_)(const char* p, size_t n);
  std::vector<char> buffer_;
  uint64_t buffer_start_ = 0;  // file offset of buffer_[0]
  uint64_t buffer_len_ = 0;
  uint64_t next_offset_ = 0;  // file offset of the next record's first byte
};

/// Shared FindRecordBoundary implementation for newline-delimited formats:
/// the offset of the first line start at or after `offset` (one past the
/// next '\n', scanning from `offset - 1` so an offset that already is a
/// line start maps to itself), or the file size when no line starts there.
/// With `skip_first_line`, offsets at or before the header resolve to the
/// first data line. A '\n' is an unambiguous record boundary for every
/// format framed by LineReader — the reader splits on it unconditionally,
/// so no record (quoted CSV fields included) can span one.
Result<uint64_t> FindLineBoundary(const RandomAccessFile* file,
                                  uint64_t offset, bool skip_first_line,
                                  const ParseKernels* kernels = nullptr);

/// RecordCursor over newline-delimited records, optionally discarding a
/// header line when iteration starts at the top of the file. Seek targets
/// are always data-record starts, so a seek skips the header implicitly.
class LineRecordCursor final : public RecordCursor {
 public:
  LineRecordCursor(const RandomAccessFile* file, bool skip_first_line,
                   const ParseKernels* kernels = nullptr)
      : reader_(file, LineReader::kDefaultBufferSize, kernels),
        pending_header_skip_(skip_first_line) {}

  Result<bool> Next(RecordRef* rec) override {
    if (pending_header_skip_) {
      pending_header_skip_ = false;
      RecordRef header;
      NODB_ASSIGN_OR_RETURN(bool has, reader_.Next(&header));
      if (!has) return false;
    }
    return reader_.Next(rec);
  }

  Status SeekToRecord(uint64_t index, uint64_t offset) override {
    (void)index;
    reader_.SeekTo(offset);
    pending_header_skip_ = false;
    return Status::OK();
  }

 private:
  LineReader reader_;
  bool pending_header_skip_;
};

}  // namespace nodb

#endif  // NODB_RAW_LINE_READER_H_
