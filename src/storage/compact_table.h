#ifndef NODB_STORAGE_COMPACT_TABLE_H_
#define NODB_STORAGE_COMPACT_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/buffered_reader.h"
#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Densely packed row storage — the "DBMS X" (commercial row store)
/// substrate. Rows carry only a 4-byte length prefix plus a null bitmap (no
/// fat tuple header), are laid out back to back inside 64 KiB blocks, and
/// scans stream blocks sequentially with batch decoding. The denser layout
/// and cheaper per-tuple bookkeeping are the honest mechanism by which
/// commercial engines out-scan PostgreSQL in the paper's Fig. 7/8.
///
/// File layout: [magic u32][row_count u64] then blocks of
/// [block_bytes u32][row_count u32][rows...]; a row is
/// [row_len u32][null bitmap][fields...] with the same field encoding as
/// TableHeap minus the header.
class CompactTable {
 public:
  static Result<std::unique_ptr<CompactTable>> Create(const std::string& path,
                                                      Schema schema);
  static Result<std::unique_ptr<CompactTable>> Open(const std::string& path,
                                                    Schema schema);

  Status Append(const Row& row);
  Status FinishLoad();

  uint64_t row_count() const { return row_count_; }
  const Schema& schema() const { return schema_; }
  const std::string& path() const { return path_; }

  /// Sequential scanner with projection pushdown; rows come back full-arity
  /// with unneeded columns as NULL placeholders.
  class Scanner {
   public:
    Scanner(const CompactTable* table, std::vector<bool> needed);
    Result<bool> Next(Row* row);

   private:
    Status LoadNextBlock();

    const CompactTable* table_;
    std::vector<bool> needed_;
    std::unique_ptr<RandomAccessFile> file_;
    std::unique_ptr<BufferedReader> reader_;
    uint64_t offset_;
    std::string_view block_;
    uint32_t rows_in_block_ = 0;
    uint32_t row_in_block_ = 0;
    size_t block_pos_ = 0;
  };

 private:
  CompactTable(std::string path, Schema schema)
      : path_(std::move(path)), schema_(std::move(schema)) {}

  void SerializeRow(const Row& row, std::string* out) const;
  Status FlushBlock();

  std::string path_;
  Schema schema_;
  uint64_t row_count_ = 0;

  // Load state.
  std::unique_ptr<WritableFile> writer_;
  std::string block_buffer_;
  uint32_t block_rows_ = 0;
  std::string row_scratch_;

  friend class Scanner;
};

}  // namespace nodb

#endif  // NODB_STORAGE_COMPACT_TABLE_H_
