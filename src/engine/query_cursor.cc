#include "engine/query_cursor.h"

#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace nodb {

QueryCursor::QueryCursor(std::unique_ptr<SelectStmt> stmt,
                         std::unique_ptr<BoundQuery> query,
                         std::unique_ptr<PhysicalPlan> plan,
                         OperatorPtr pipeline, size_t batch_size,
                         ExecControlPtr control)
    : stmt_(std::move(stmt)), query_(std::move(query)),
      plan_(std::move(plan)), pipeline_(std::move(pipeline)),
      schema_(query_->output_schema), plan_text_(plan_->ToString()),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      control_(std::move(control)) {
  for (const BoundTable& t : query_->tables) tables_.push_back(t.table_name);
  for (const BoundSemiJoin& s : query_->semi_joins) {
    tables_.push_back(s.table.table_name);
  }
}

QueryCursor::QueryCursor(QueryCursor&&) noexcept = default;

QueryCursor& QueryCursor::operator=(QueryCursor&& other) noexcept {
  if (this != &other) {
    Status s = Close();  // don't destroy an open pipeline without Close
    (void)s;
    stmt_ = std::move(other.stmt_);
    query_ = std::move(other.query_);
    plan_ = std::move(other.plan_);
    pipeline_ = std::move(other.pipeline_);
    opened_ = other.opened_;
    exhausted_ = other.exhausted_;
    schema_ = std::move(other.schema_);
    plan_text_ = std::move(other.plan_text_);
    batch_size_ = other.batch_size_;
    tables_ = std::move(other.tables_);
    control_ = std::move(other.control_);
  }
  return *this;
}

QueryCursor::~QueryCursor() {
  Status s = Close();  // best effort; a destructor has no error channel
  (void)s;
}

Result<size_t> QueryCursor::Next(RowBatch* batch) {
  if (pipeline_ == nullptr) {
    if (exhausted_) {
      batch->Clear();
      return size_t{0};
    }
    return Status::InvalidArgument("Next on a closed QueryCursor");
  }
  // Any execution error poisons the cursor: operators are not written to
  // be re-driven after a failed Open/Next (a retried Open would e.g.
  // re-insert a hash join's build side), so the pipeline is dropped and
  // later calls report the cursor as closed.
  //
  // The cancellation/deadline check happens here — the batch boundary every
  // streamed query passes through — and again inside the drain loops of the
  // materializing operators, which otherwise consume their whole input
  // before the first batch surfaces.
  if (control_ != nullptr) {
    Status s = control_->Check();
    if (!s.ok()) {
      Abandon();
      return s;
    }
  }
  if (!opened_) {
    Status s = pipeline_->Open();
    if (!s.ok()) {
      Abandon();
      return s;
    }
    opened_ = true;
  }
  Result<size_t> n = pipeline_->Next(batch);
  if (!n.ok()) {
    Abandon();
    return n.status();
  }
  if (*n == 0) {
    // Natural end of stream: release resources now so a drained cursor
    // holds no file handles, and remember that 0-forever is the contract.
    exhausted_ = true;
    NODB_RETURN_IF_ERROR(Close());
  }
  return *n;
}

void QueryCursor::Abandon() {
  // Drops the pipeline without driving operator Close on a half-opened
  // tree; operator destructors release their own resources.
  pipeline_.reset();
  plan_.reset();
  query_.reset();
  stmt_.reset();
}

Status QueryCursor::Close() {
  if (pipeline_ == nullptr) return Status::OK();
  OperatorPtr pipeline = std::move(pipeline_);
  std::unique_ptr<PhysicalPlan> plan = std::move(plan_);
  std::unique_ptr<BoundQuery> query = std::move(query_);
  std::unique_ptr<SelectStmt> stmt = std::move(stmt_);
  if (opened_) return pipeline->Close();
  return Status::OK();
}

}  // namespace nodb
