#ifndef NODB_SERVER_PROTOCOL_H_
#define NODB_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>

#include "exec/row_batch.h"
#include "server/metrics.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// The query service's wire format: newline-delimited JSON, one request per
/// line, one or more response lines per request. See README "Serving" for
/// the full exchange spec. Summary:
///
///   client: {"q": "SELECT ...", "deadline_ms": 2000, "id": "q1"}
///   server: {"schema":[{"name":"a1","type":"int64"}, ...]}
///           {"rows":[[1,"x"],[2,null], ...]}        (repeated, one/batch)
///           {"status":"ok","rows":2,"cold":true,"seconds":0.041,"id":"q1"}
///
///   client: STATS            (bare verb, or {"op":"stats"})
///   server: {"stats":{...ServerStats fields...,"session":{...}}}
///
///   client: CANCEL           (mid-stream: aborts the in-flight query)
///   server: {"status":"error","code":"Cancelled","message":"..."}
///
/// Errors terminate the exchange with a typed line:
///   {"status":"error","code":"DeadlineExceeded","message":"..."}
struct Request {
  enum class Kind { kQuery, kStats, kCancel, kPing, kQuit };
  Kind kind = Kind::kQuery;
  std::string sql;         // kQuery only
  int64_t deadline_ms = 0; // 0 = server default applies
  std::string id;          // optional client tag, echoed in the terminal line
};

/// Parses one request line (bare verb or JSON object). Unknown keys are
/// ignored; malformed lines are a typed InvalidArgument the session reports
/// back without dropping the connection.
Result<Request> ParseRequest(std::string_view line);

/// `{"schema":[{"name":...,"type":...},...]}\n`
std::string SchemaLine(const Schema& schema);

/// Appends `{"rows":[[...],...]}\n` for rows [0, n) of `batch`. Values
/// render as JSON literals: int64/bool bare, double via the engine's
/// round-trip formatting (non-finite degrades to null), strings and dates
/// quoted, NULLs as null.
void AppendBatchLine(std::string* out, const RowBatch& batch, size_t n);

/// `{"status":"ok","rows":N,"cold":B,"seconds":S[,"id":...]}\n`
std::string OkLine(uint64_t rows, bool cold, double seconds,
                   std::string_view id);

/// `{"status":"error","code":<StatusCodeToString>,"message":...[,"id"]}\n`
std::string ErrorLine(const Status& status, std::string_view id);

/// Per-session slice of the STATS payload.
struct SessionStatsView {
  uint64_t session_id = 0;
  uint64_t queries = 0;
  uint64_t rows_streamed = 0;
  uint64_t bytes_streamed = 0;
};

/// `{"stats":{...,"session":{...}}}\n`
std::string StatsLine(const ServerStats& stats,
                      const SessionStatsView& session);

/// `{"pong":true}\n`
std::string PongLine();

}  // namespace nodb

#endif  // NODB_SERVER_PROTOCOL_H_
