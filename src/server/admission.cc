#include "server/admission.h"

#include <chrono>

namespace nodb {

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(cold_);
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    bool cold, const ExecControlPtr& control) {
  const int cap = cold ? config_.max_cold : config_.max_warm;
  const int queue_limit =
      cold ? config_.cold_queue_limit : config_.warm_queue_limit;
  int& active = cold ? cold_active_ : warm_active_;
  int& queued = cold ? cold_queued_ : warm_queued_;

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Cancelled("server is shutting down");
  if (active < cap) {
    ++active;
    return Ticket(this, cold);
  }
  // Saturated: queue with backpressure — unless the queue is already at its
  // bound, where the only honest answer is an immediate typed rejection.
  if (queued >= queue_limit) {
    return Status::ResourceExhausted(
        std::string(cold ? "cold" : "warm") +
        " admission queue full (active " + std::to_string(active) + "/" +
        std::to_string(cap) + ", queued " + std::to_string(queued) + "/" +
        std::to_string(queue_limit) + ")");
  }
  ++queued;
  // Short waits instead of one long one: the waiter polls its ExecControl
  // so a CANCEL, a deadline expiry or a server Shutdown() is honored within
  // ~20ms even though those events have no path to this condition variable.
  Status verdict;
  while (true) {
    if (shutdown_) {
      verdict = Status::Cancelled("server is shutting down");
      break;
    }
    if (active < cap) {
      ++active;
      break;
    }
    if (control != nullptr) {
      verdict = control->Check();
      if (!verdict.ok()) break;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
  --queued;
  if (!verdict.ok()) return verdict;
  return Ticket(this, cold);
}

void AdmissionController::ReleaseSlot(bool cold) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cold) {
      --cold_active_;
    } else {
      --warm_active_;
    }
  }
  cv_.notify_all();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int AdmissionController::active(bool cold) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold ? cold_active_ : warm_active_;
}

int AdmissionController::queued(bool cold) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold ? cold_queued_ : warm_queued_;
}

}  // namespace nodb
